(* Cross-verification tests: independent (slower, simpler) methods must
   agree with the production implementations.

   - simplex vs brute-force vertex enumeration on random 2-variable LPs;
   - hypervolume vs Monte-Carlo area estimation;
   - Dormand–Prince convergence order on a problem with known solution;
   - FBA optimum vs hand-computed yields on an analytic chain. *)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* {1 Simplex vs vertex enumeration} *)

(* max c·x s.t. a_k·x <= b_k, 0 <= x <= u (2 variables): the optimum lies
   on a vertex — enumerate all intersections of constraint pairs (plus
   bounds) and take the best feasible one. *)
let brute_force_2var ~cx ~cy ~rows ~ux ~uy =
  let lines =
    (* constraint rows ax+by=c plus the four bound lines *)
    rows
    @ [ (1., 0., 0.); (1., 0., ux); (0., 1., 0.); (0., 1., uy) ]
  in
  let feasible (x, y) =
    x >= -1e-9 && x <= ux +. 1e-9 && y >= -1e-9 && y <= uy +. 1e-9
    && List.for_all (fun (a, b, c) -> (a *. x) +. (b *. y) <= c +. 1e-9) rows
  in
  let best = ref neg_infinity in
  List.iteri
    (fun i (a1, b1, c1) ->
      List.iteri
        (fun j (a2, b2, c2) ->
          if i < j then begin
            let det = (a1 *. b2) -. (a2 *. b1) in
            if Float.abs det > 1e-12 then begin
              let x = ((c1 *. b2) -. (c2 *. b1)) /. det in
              let y = ((a1 *. c2) -. (a2 *. c1)) /. det in
              if feasible (x, y) then
                best := Float.max !best ((cx *. x) +. (cy *. y))
            end
          end)
        lines)
    lines;
  !best

let test_simplex_matches_vertex_enumeration () =
  let rng = Numerics.Rng.create 123 in
  for _ = 1 to 50 do
    let cx = Numerics.Rng.uniform rng 0. 2. and cy = Numerics.Rng.uniform rng 0. 2. in
    let ux = Numerics.Rng.uniform rng 1. 5. and uy = Numerics.Rng.uniform rng 1. 5. in
    let rows =
      List.init 3 (fun _ ->
          ( Numerics.Rng.uniform rng 0.1 1.,
            Numerics.Rng.uniform rng 0.1 1.,
            Numerics.Rng.uniform rng 0.5 4. ))
    in
    let expected = brute_force_2var ~cx ~cy ~rows ~ux ~uy in
    let p = Lp.Problem.make ~n_vars:2 () in
    Lp.Problem.set_bounds p 0 0. ux;
    Lp.Problem.set_bounds p 1 0. uy;
    Lp.Problem.set_objective p 0 cx;
    Lp.Problem.set_objective p 1 cy;
    List.iter (fun (a, b, c) -> Lp.Problem.add_row p [ (0, a); (1, b) ] Lp.Problem.Le c) rows;
    match Lp.Problem.solve p with
    | Lp.Problem.Optimal { objective; _ } ->
      check_float ~tol:1e-6 "simplex = vertex enumeration" expected objective
    | _ -> Alcotest.fail "bounded feasible LP must be optimal"
  done

(* {1 Hypervolume vs Monte Carlo} *)

let test_hypervolume_vs_monte_carlo () =
  let rng = Numerics.Rng.create 5 in
  for _ = 1 to 5 do
    let pts =
      List.init 8 (fun _ ->
          [| Numerics.Rng.uniform rng 0. 1.; Numerics.Rng.uniform rng 0. 1. |])
    in
    let exact = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] pts in
    (* Monte-Carlo membership test over the unit square. *)
    let n = 200_000 in
    let hits = ref 0 in
    for _ = 1 to n do
      let x = Numerics.Rng.float rng and y = Numerics.Rng.float rng in
      if List.exists (fun p -> p.(0) <= x && p.(1) <= y) pts then incr hits
    done;
    let mc = float_of_int !hits /. float_of_int n in
    check_float ~tol:0.01 "hv within 1% of MC" mc exact
  done

let test_hypervolume_3d_vs_monte_carlo () =
  let rng = Numerics.Rng.create 6 in
  let pts =
    List.init 6 (fun _ ->
        Array.init 3 (fun _ -> Numerics.Rng.uniform rng 0. 1.))
  in
  let exact = Moo.Hypervolume.compute ~ref_point:[| 1.; 1.; 1. |] pts in
  let n = 200_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    let q = Array.init 3 (fun _ -> Numerics.Rng.float rng) in
    if List.exists (fun p -> p.(0) <= q.(0) && p.(1) <= q.(1) && p.(2) <= q.(2)) pts
    then incr hits
  done;
  check_float ~tol:0.01 "3d hv within 1% of MC" (float_of_int !hits /. float_of_int n) exact

(* {1 ODE convergence order} *)

let test_dopri5_error_scales_with_tolerance () =
  (* y' = y·cos t, y(0) = 1 → y(t) = exp(sin t). *)
  let f t y = [| y.(0) *. cos t |] in
  let exact = exp (sin 5.) in
  let err rtol =
    let r = Numerics.Ode.dopri5 ~rtol ~atol:(rtol /. 1000.) ~f ~t0:0. ~t1:5. ~y0:[| 1. |] () in
    Float.abs (r.Numerics.Ode.y.(0) -. exact)
  in
  let e3 = err 1e-3 and e6 = err 1e-6 and e9 = err 1e-9 in
  Alcotest.(check bool)
    (Printf.sprintf "errors shrink: %.2e -> %.2e -> %.2e" e3 e6 e9)
    true
    (e6 < e3 && e9 <= e6 +. 1e-12 && e9 < 1e-7)

let test_rk4_fourth_order () =
  (* Halving the step of RK4 must cut the error by ~16x. *)
  let f _t y = [| -.y.(0) |] in
  let err steps =
    let r = Numerics.Ode.rk4 ~f ~t0:0. ~y0:[| 1. |] ~dt:(1. /. float_of_int steps) ~steps in
    Float.abs (r.Numerics.Ode.y.(0) -. exp (-1.))
  in
  let e1 = err 20 and e2 = err 40 in
  let ratio = e1 /. e2 in
  Alcotest.(check bool)
    (Printf.sprintf "order ~4 (ratio %.1f in [10, 25])" ratio)
    true
    (ratio > 10. && ratio < 25.)

(* {1 FBA vs analytic yield} *)

let test_fba_matches_hand_computed_yield () =
  (* ac uptake U, full oxidation: EP = 4·U − (consumption by fixed ATPM
     and the minimum biomass)... verified on a hand-built 3-step chain
     instead: A → B → C, each 1:1, uptake <= 7.25: max EX_C = 7.25. *)
  let net = Fba.Network.create ~metabolites:[| "A"; "B"; "C" |] () in
  let _ = Fba.Network.add_reaction net ~name:"EX_A" ~stoich:[ (0, 1.) ] ~lb:0. ~ub:7.25 in
  let _ = Fba.Network.add_reaction net ~name:"AB" ~stoich:[ (0, -1.); (1, 1.) ] ~lb:0. ~ub:1000. in
  let _ = Fba.Network.add_reaction net ~name:"BC" ~stoich:[ (1, -2.); (2, 1.) ] ~lb:0. ~ub:1000. in
  let ex_c = Fba.Network.add_reaction net ~name:"EX_C" ~stoich:[ (2, -1.) ] ~lb:0. ~ub:1000. in
  let sol = Fba.Analysis.fba ~t:net ~objective:ex_c in
  (* 2 B per C: yield is uptake/2. *)
  check_float ~tol:1e-6 "stoichiometric yield" 3.625 sol.Fba.Analysis.objective

let test_geobacter_electron_accounting () =
  (* The synthetic Geobacter's electron yield per acetate is 4 (3 NADH +
     1 menaquinol); max EP must equal 4·acetate − (ATPM·1 e) −
     (biomass-floor electron cost), reproduced by the LP within 1%. *)
  let g = Fba.Geobacter.build () in
  let sol = Fba.Analysis.fba ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.ep in
  let acetate = sol.Fba.Analysis.fluxes.(g.Fba.Geobacter.ex_acetate) in
  Alcotest.(check bool) "acetate at its bound" true (acetate > 51.7);
  Alcotest.(check bool)
    (Printf.sprintf "EP %.1f below the 4e/acetate ceiling %.1f" sol.Fba.Analysis.objective
       (4. *. acetate))
    true
    (sol.Fba.Analysis.objective < 4. *. acetate
     && sol.Fba.Analysis.objective > 0.75 *. 4. *. acetate)

let () =
  Alcotest.run "verification"
    [
      ( "lp",
        [
          Alcotest.test_case "simplex vs vertex enumeration" `Quick
            test_simplex_matches_vertex_enumeration;
        ] );
      ( "hypervolume",
        [
          Alcotest.test_case "2d vs monte carlo" `Quick test_hypervolume_vs_monte_carlo;
          Alcotest.test_case "3d vs monte carlo" `Quick test_hypervolume_3d_vs_monte_carlo;
        ] );
      ( "ode",
        [
          Alcotest.test_case "dopri5 tolerance scaling" `Quick
            test_dopri5_error_scales_with_tolerance;
          Alcotest.test_case "rk4 fourth order" `Quick test_rk4_fourth_order;
        ] );
      ( "fba",
        [
          Alcotest.test_case "analytic yield" `Quick test_fba_matches_hand_computed_yield;
          Alcotest.test_case "geobacter electron ceiling" `Slow
            test_geobacter_electron_accounting;
        ] );
    ]
