(* Physiological fingerprints of the reconstructed leaf model: the A/Ci
   curve, the sink (triose-P export) response, the temperature response
   and the photosynthetic induction transient.  None of these were fit
   directly — they emerge from the kinetics calibrated at one operating
   point, so they are good sanity checks of the substrate.

     dune exec examples/physiology.exe *)

let bar width value scale =
  let n = int_of_float (Float.max 0. (Float.min (float_of_int width) (value /. scale))) in
  String.make n '#'

let () =
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in

  print_endline "A/Ci curve (natural leaf):";
  List.iter
    (fun (ci, a) -> Printf.printf "  Ci %4.0f ppm  A %7.3f %s\n" ci a (bar 40 a 0.6))
    (Photo.Response.a_ci_curve ~tp_export:1.
       ~ci_values:[ 100.; 165.; 220.; 270.; 350.; 490.; 700. ]
       ());

  print_endline "\nSink limitation (uptake vs triose-P export capacity, Ci=270):";
  List.iter
    (fun (e, a) -> Printf.printf "  export %4.2f  A %7.3f %s\n" e a (bar 40 a 0.6))
    (Photo.Response.export_response ~ci:270. ~export_values:[ 0.1; 0.25; 0.5; 1.; 2.; 3. ] ());

  print_endline "\nTemperature response (Q10 kinetics + deactivation):";
  List.iter
    (fun (t, a) -> Printf.printf "  %4.0f C  A %7.3f %s\n" t a (bar 40 a 0.6))
    (Photo.Temperature.a_t_curve ~env ~t_values:[ 10.; 15.; 20.; 25.; 30.; 35.; 40. ] ());
  let topt, aopt = Photo.Temperature.optimum ~env () in
  Printf.printf "  optimum: %.1f C (A = %.2f)\n" topt aopt;

  print_endline "\nPhotosynthetic induction (dark-adapted leaf stepped into light):";
  let samples = Photo.Simulate.induction ~env ~ratios:(Array.make Photo.Enzyme.count 1.) () in
  List.iter
    (fun s ->
      if int_of_float s.Photo.Simulate.t mod 30 = 0 then
        Printf.printf "  t=%4.0f s  A %7.3f %s\n" s.Photo.Simulate.t
          s.Photo.Simulate.assimilation
          (bar 40 s.Photo.Simulate.assimilation 0.6))
    samples;
  Printf.printf "  half-rise time: %.0f s\n" (Photo.Simulate.induction_half_time samples)
