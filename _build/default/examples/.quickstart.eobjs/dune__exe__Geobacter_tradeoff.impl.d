examples/geobacter_tradeoff.ml: Char Ea Fba List Moo Printf
