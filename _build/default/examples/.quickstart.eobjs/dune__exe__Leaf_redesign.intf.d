examples/leaf_redesign.mli:
