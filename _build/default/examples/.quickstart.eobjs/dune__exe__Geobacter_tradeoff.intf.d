examples/geobacter_tradeoff.mli:
