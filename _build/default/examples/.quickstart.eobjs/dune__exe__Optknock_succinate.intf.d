examples/optknock_succinate.mli:
