examples/physiology.ml: Array Float List Photo Printf String
