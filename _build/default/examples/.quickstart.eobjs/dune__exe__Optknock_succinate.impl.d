examples/optknock_succinate.ml: Fba List Printf String
