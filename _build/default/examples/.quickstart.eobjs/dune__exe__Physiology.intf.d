examples/physiology.mli:
