examples/robustness_screening.mli:
