examples/mixed_islands.ml: Ea List Moo Pmo2 Printf String
