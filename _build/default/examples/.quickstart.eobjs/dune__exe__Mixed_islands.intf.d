examples/mixed_islands.mli:
