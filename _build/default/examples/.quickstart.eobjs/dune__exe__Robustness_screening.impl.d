examples/robustness_screening.ml: Array List Numerics Photo Printf Robustness
