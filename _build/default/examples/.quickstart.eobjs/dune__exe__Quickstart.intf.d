examples/quickstart.mli:
