examples/quickstart.ml: Ea List Photo Pmo2 Printf Robustpath
