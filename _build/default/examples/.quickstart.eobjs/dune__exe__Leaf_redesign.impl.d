examples/leaf_redesign.ml: Array Ea Float List Moo Photo Pmo2 Printf String
