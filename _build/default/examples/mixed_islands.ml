(* PMO2 with heterogeneous islands: the paper notes the framework
   "encloses two optimization algorithms" — here one island runs NSGA-II
   and the other SPEA2, exchanging non-dominated candidates by the
   broadcast scheme.

     dune exec examples/mixed_islands.exe *)

let zdt1 n = Moo.Benchmarks.zdt1 ~n

let hv front = Moo.Hypervolume.of_solutions ~ref_point:[| 1.1; 1.1 |] front

let () =
  let problem = zdt1 30 in
  let mixed =
    {
      Pmo2.Archipelago.default_config with
      migration_period = 25;
      algorithms =
        [
          Pmo2.Archipelago.Nsga2 { Ea.Nsga2.default_config with pop_size = 40 };
          Pmo2.Archipelago.Spea2
            { Ea.Spea2.default_config with pop_size = 40; archive_size = 40 };
        ];
    }
  in
  let st = Pmo2.Archipelago.init ~seed:1 problem mixed in
  Printf.printf "islands: %s\n" (String.concat " + " (Pmo2.Archipelago.island_names st));
  for epoch = 1 to 6 do
    Pmo2.Archipelago.step_epoch st;
    let front =
      Moo.Dominance.non_dominated (Moo.Archive.to_list (Pmo2.Archipelago.archive st))
    in
    Printf.printf "  epoch %d (%3d generations): |front| = %3d, hv = %.4f\n" epoch
      (Pmo2.Archipelago.generations_done st)
      (List.length front) (hv front)
  done;
  let fronts = Pmo2.Archipelago.islands_fronts st in
  List.iteri
    (fun i f ->
      Printf.printf "island %d (%s): %d non-dominated, hv %.4f\n" i
        (List.nth (Pmo2.Archipelago.island_names st) i)
        (List.length f) (hv f))
    fronts;
  (* Who contributed to the merged front? *)
  let merged = Moo.Coverage.union_front fronts in
  List.iteri
    (fun i f ->
      Printf.printf "island %d coverage of the union: Gp = %.3f, Rp = %.3f\n" i
        (Moo.Coverage.gp f merged) (Moo.Coverage.rp f merged))
    fronts
