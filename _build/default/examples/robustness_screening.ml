(* Robustness screening (Section 2.3): the yield Γ under global and local
   Monte-Carlo perturbation of a leaf design.

   Reproduces the paper's protocol: 10% multiplicative perturbations,
   ε = 5% of the nominal uptake, 5000-trial global ensembles and
   200-trial per-enzyme local ensembles.

     dune exec examples/robustness_screening.exe *)

let () =
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in
  let warm = (Photo.Steady_state.natural ~env ()).Photo.Steady_state.y in
  let uptake ratios =
    (Photo.Steady_state.evaluate ~y0:warm ~env ~ratios ()).Photo.Steady_state.uptake
  in
  let rng = Numerics.Rng.create 42 in

  (* Global analysis of the natural leaf (reduced ensemble for the demo;
     pass trials:5000 for the paper's budget). *)
  let natural = Array.make Photo.Enzyme.count 1. in
  let global = Robustness.Yield.gamma ~rng ~f:uptake ~trials:600 natural in
  Printf.printf
    "natural leaf: nominal uptake %.3f, global yield %.1f%% (%d/%d trials within 5%%)\n\n"
    global.Robustness.Yield.nominal global.Robustness.Yield.yield_pct
    global.Robustness.Yield.survivors global.Robustness.Yield.trials;

  (* Local analysis: which enzymes is the uptake most sensitive to? *)
  Printf.printf "local (one-enzyme-at-a-time) yields, 120 trials each:\n";
  let profile = Robustness.Screen.local_analysis ~rng ~f:uptake ~trials:120 natural in
  let sorted =
    List.sort
      (fun a b -> compare a.Robustness.Screen.yield_pct b.Robustness.Screen.yield_pct)
      profile
  in
  List.iter
    (fun p ->
      Printf.printf "  %-22s %6.1f%%%s\n"
        Photo.Enzyme.names.(p.Robustness.Screen.index)
        p.Robustness.Screen.yield_pct
        (if p.Robustness.Screen.yield_pct < 99.5 then "   <- sensitive" else ""))
    sorted;

  (* A deliberately fragile design: everything at the minimum ratio. *)
  let starved = Array.make Photo.Enzyme.count 0.3 in
  let fragile = Robustness.Yield.gamma ~rng ~f:uptake ~trials:300 starved in
  Printf.printf "\nstarved design: nominal %.3f, yield %.1f%% — compare with the natural leaf\n"
    fragile.Robustness.Yield.nominal fragile.Robustness.Yield.yield_pct
