(* Leaf re-engineering: find a candidate-B style design — the natural CO2
   uptake at a fraction of the protein-nitrogen — and show which of the 23
   enzymes change, as in Figure 2 of the paper.

     dune exec examples/leaf_redesign.exe *)

let () =
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in
  let problem = Photo.Leaf.problem env in
  let natural_uptake, natural_n = Photo.Leaf.natural_point env in

  (* Seed the archipelago with the natural leaf so the search brackets the
     operating point from the start. *)
  let natural = Moo.Solution.evaluate problem (Array.make Photo.Enzyme.count 1.) in
  let cfg =
    {
      Pmo2.Archipelago.default_config with
      migration_period = 25;
      nsga2 = { Ea.Nsga2.default_config with pop_size = 32 };
    }
  in
  let result = Pmo2.Archipelago.run ~seed:7 ~initial:[ natural ] ~generations:100 problem cfg in
  let front = result.Pmo2.Archipelago.front in
  Printf.printf "front: %d designs\n" (List.length front);

  (* Candidate B: cheapest design that keeps the natural uptake. *)
  let keeps_uptake s = Photo.Leaf.uptake_of s >= 0.975 *. natural_uptake in
  match List.filter keeps_uptake front with
  | [] -> print_endline "no equal-uptake candidate at this budget; increase generations"
  | first :: rest ->
    let b =
      List.fold_left
        (fun best s ->
          if Photo.Leaf.nitrogen_of s < Photo.Leaf.nitrogen_of best then s else best)
        first rest
    in
    Printf.printf
      "candidate B: uptake %.2f (natural %.2f), nitrogen %.0f = %.0f%% of natural\n\n"
      (Photo.Leaf.uptake_of b) natural_uptake (Photo.Leaf.nitrogen_of b)
      (100. *. Photo.Leaf.nitrogen_of b /. natural_n);
    Printf.printf "enzyme ratios (B / natural), the Figure 2 bar chart:\n";
    Array.iteri
      (fun i r ->
        let bar = String.make (int_of_float (Float.min 40. (r *. 20.))) '#' in
        Printf.printf "  %-22s %6.3f %s\n" Photo.Enzyme.names.(i) r bar)
      b.Moo.Solution.x;
    (* Which enzymes dropped the most nitrogen? *)
    let natural_vmax = Photo.Enzyme.natural_vmax () in
    let savings =
      Array.mapi
        (fun i r ->
          let e = Photo.Enzyme.all.(i) in
          let per_vmax = e.Photo.Enzyme.mw_kda *. 1000. /. e.Photo.Enzyme.kcat in
          (i, (1. -. r) *. natural_vmax.(i) *. per_vmax))
        b.Moo.Solution.x
    in
    Array.sort (fun (_, a) (_, b) -> compare b a) savings;
    Printf.printf "\nlargest nitrogen savings:\n";
    Array.iteri
      (fun rank (i, mg) ->
        if rank < 5 && mg > 0. then
          Printf.printf "  %-22s %8.0f mg/l (raw)\n" Photo.Enzyme.names.(i) mg)
      savings
