(* Quickstart: the whole methodology in ~30 lines.

   Optimize the C3 leaf for CO2 uptake vs protein-nitrogen with PMO2,
   mine the front, and report the robustness of the balanced trade-off.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. The design problem: present-day CO2, low triose-phosphate export. *)
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in
  let problem = Photo.Leaf.problem env in

  (* 2. PMO2 at a demo budget: 2 NSGA-II islands, broadcast migration. *)
  let config =
    {
      Robustpath.Design.default_config with
      generations = 60;
      robustness_trials = 300;
      sweep_points = 8;
      pmo2 =
        {
          Pmo2.Archipelago.default_config with
          migration_period = 20;
          nsga2 = { Ea.Nsga2.default_config with pop_size = 24 };
        };
    }
  in

  (* 3. Optimize → mine → robustness-screen, in one call. *)
  let property = fun ratios ->
    (Photo.Steady_state.evaluate ~env ~ratios ()).Photo.Steady_state.uptake
  in
  let outcome = Robustpath.Design.run ~property problem config in

  let natural_uptake, natural_n = Photo.Leaf.natural_point env in
  Printf.printf "natural leaf: uptake %.2f umol/m2/s at %.0f mg/l nitrogen\n\n"
    natural_uptake natural_n;
  Printf.printf "Pareto front: %d designs (%d evaluations)\n"
    (List.length outcome.Robustpath.Design.front)
    outcome.Robustpath.Design.evaluations;
  List.iter
    (fun m ->
      Printf.printf "  %-16s uptake %6.2f  nitrogen %8.0f  yield %5.1f%%\n"
        m.Robustpath.Design.label
        (Photo.Leaf.uptake_of m.Robustpath.Design.solution)
        (Photo.Leaf.nitrogen_of m.Robustpath.Design.solution)
        m.Robustpath.Design.yield_pct)
    outcome.Robustpath.Design.mined;
  Printf.printf "\nmost robust design seen: yield %.1f%% at uptake %.2f\n"
    outcome.Robustpath.Design.max_yield.Robustpath.Design.yield_pct
    (Photo.Leaf.uptake_of outcome.Robustpath.Design.max_yield.Robustpath.Design.solution)
