(* Geobacter sulfurreducens: the biomass-vs-electron-production trade-off
   of Section 3.2 / Figure 4.

   Builds the 608-reaction synthetic network, computes the exact LP
   trade-off (FBA with an epsilon-constraint sweep), then runs the
   multi-objective search over all 608 fluxes with steady-state pressure
   and prints the five best trade-off points.

     dune exec examples/geobacter_tradeoff.exe *)

let () =
  let g = Fba.Geobacter.build () in
  let net = g.Fba.Geobacter.net in
  Printf.printf "network: %d reactions, %d metabolites (ATP maintenance fixed at %.2f)\n\n"
    (Fba.Network.n_reactions net) (Fba.Network.n_metabolites net)
    Fba.Geobacter.atp_maintenance;

  (* Exact LP trade-off. *)
  Printf.printf "FBA epsilon-constraint sweep (exact Pareto front):\n";
  let sweep =
    Fba.Analysis.epsilon_constraint ~t:net ~primary:g.Fba.Geobacter.ep
      ~secondary:g.Fba.Geobacter.bp ~levels:[ 0.283; 0.290; 0.295; 0.301 ]
  in
  List.iter
    (fun (ep, bp) -> Printf.printf "  EP %8.3f  BP %.4f  mmol/gDW/h\n" ep bp)
    sweep;

  (* Multi-objective search over the fluxes, seeded from FBA vertices. *)
  let problem = Fba.Moo_problem.problem g in
  let seeds = Fba.Moo_problem.seeds g ~levels:[ 0.283; 0.292; 0.301 ] in
  let vary = Fba.Moo_problem.flux_variation g () in
  let cfg =
    {
      Ea.Nsga2.default_config with
      pop_size = 30;
      variation = Some vary;
    }
  in
  let front = Ea.Nsga2.run ~initial:seeds ~generations:30 ~seed:3 problem cfg in
  let feasible = List.filter (fun s -> s.Moo.Solution.v <= 0.) front in
  Printf.printf "\nevolutionary front: %d points (%d near-steady-state)\n"
    (List.length front) (List.length feasible);
  Printf.printf "five spread trade-offs (cf. the paper's A-E):\n";
  List.iteri
    (fun i s ->
      Printf.printf "  %c: EP %8.3f  BP %.4f  ||S.v|| %.3f\n"
        (Char.chr (Char.code 'A' + i))
        (Fba.Moo_problem.ep_of s) (Fba.Moo_problem.bp_of s)
        (Fba.Network.violation net s.Moo.Solution.x))
    (List.sort
       (fun a b -> compare (Fba.Moo_problem.ep_of a) (Fba.Moo_problem.ep_of b))
       (Moo.Mine.equally_spaced ~k:5 feasible))
