(* OptKnock-style strain design (the approach the paper cites as the
   established alternative to its multi-objective formulation):
   find reaction deletions that growth-couple succinate production in a
   small E. coli fermentation core.

     dune exec examples/optknock_succinate.exe *)

let () =
  let m = Fba.Ecoli_core.build () in
  let net = m.Fba.Ecoli_core.net in
  Printf.printf "E. coli core: %d reactions, %d metabolites, glucose <= 10 mmol/gDW/h\n\n"
    (Fba.Network.n_reactions net) (Fba.Network.n_metabolites net);

  let describe label removed =
    match
      Fba.Knockout.growth_coupled ~t:net ~target:m.ex_succinate ~biomass:m.biomass ~removed
    with
    | None -> Printf.printf "  %-22s lethal\n" label
    | Some c ->
      let lo, hi = c.Fba.Knockout.target_at_growth in
      Printf.printf "  %-22s growth %.3f   succinate at optimal growth [%.2f, %.2f]%s\n"
        label c.Fba.Knockout.biomass_opt lo hi
        (if lo > 1e-6 then "   <- growth-coupled" else "")
  in
  Printf.printf "single and double deletions (LDH, ADHE, PTA, PFL):\n";
  describe "wild type" [];
  describe "dLDH" [ m.ldh ];
  describe "dADHE" [ m.adhe ];
  describe "dPTA" [ m.pta ];
  describe "dPFL" [ m.pfl ];
  describe "dPFL dLDH" [ m.pfl; m.ldh ];
  describe "dPFL dADHE" [ m.pfl; m.adhe ];
  describe "dLDH dADHE" [ m.ldh; m.adhe ];

  (* The enumerative screen over all pairs, ranked by achievable target. *)
  Printf.printf "\nenumerative screen (max succinate, growth >= 1):\n";
  let kos =
    Fba.Knockout.pairs ~t:net ~target:m.ex_succinate ~biomass:m.biomass ~min_biomass:1.
      ~candidates:(Fba.Ecoli_core.succinate_candidates m)
  in
  List.iter
    (fun (k : Fba.Knockout.knockout) ->
      let names =
        String.concat "+"
          (List.map (fun j -> (Fba.Network.reaction net j).Fba.Network.name) k.removed)
      in
      Printf.printf "  remove %-16s max succinate %.2f (growth %.2f)\n" names
        k.Fba.Knockout.target_flux k.Fba.Knockout.biomass_flux)
    kos
