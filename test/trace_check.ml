(* End-to-end schema check for the observability outputs, run from the
   [trace-check] dune alias (attached to [dune runtest]).

   Drives a 2-epoch mini archipelago over an ODE-backed problem with
   tracing and metrics enabled, then re-reads both files with [Obs.Json]
   and validates their shape: the trace must be a Chrome trace_event
   document (complete "X" events with name/ts/dur/pid/tid), the metrics
   stream one JSON object per epoch carrying the ode.*, guard.* and
   arch.* series.  No external tools — the same minimal JSON codec that
   wrote the files checks them.  Exits non-zero with a message on the
   first violation. *)

let fail fmt = Printf.ksprintf (fun s -> prerr_endline ("trace-check: FAIL: " ^ s); exit 1) fmt

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let read_lines path =
  String.split_on_char '\n' (read_file path) |> List.filter (fun l -> l <> "")

(* Total lookup: missing members read as [Null]. *)
let mem k j = Option.value ~default:Obs.Json.Null (Obs.Json.member k j)

(* A problem whose every evaluation exercises the instrumented numeric
   stack: integrate a decay ODE to t = 1 and trade final mass against the
   decay rate. *)
let ode_problem =
  Moo.Problem.make ~name:"ode-mini" ~n_obj:2 ~lower:[| 0.1 |] ~upper:[| 2. |] (fun x ->
      let k = x.(0) in
      let r, _ =
        Numerics.Ode.integrate_fallback
          ~f:(fun _ y -> [| -.k *. y.(0) |])
          ~t0:0. ~t1:1. ~y0:[| 1. |] ()
      in
      [| r.Numerics.Ode.y.(0); k |])

let () =
  let trace_path = Filename.temp_file "trace_check" ".json" in
  let metrics_path = Filename.temp_file "trace_check" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ trace_path; metrics_path ])
  @@ fun () ->
  (* {2 Run: 2 epochs, tracing + metrics on} *)
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Span.set_enabled true;
  Obs.Metrics.set_enabled true;
  let cfg =
    {
      Pmo2.Archipelago.default_config with
      migration_period = 2;
      nsga2 = { Ea.Nsga2.default_config with pop_size = 8 };
      guard_penalty = Some 1e12;
    }
  in
  let oc = open_out metrics_path in
  let r =
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        Pmo2.Archipelago.run ~seed:7
          ~observer:(Pmo2.Archipelago.jsonl_observer oc)
          ~generations:4 ode_problem cfg)
  in
  Obs.Span.set_enabled false;
  Obs.Metrics.set_enabled false;
  Obs.Span.write_chrome ~path:trace_path;
  if r.Pmo2.Archipelago.front = [] then fail "mini run produced an empty front";

  (* {2 Trace: Chrome trace_event schema} *)
  let doc =
    try Obs.Json.parse (read_file trace_path)
    with Obs.Json.Parse_error msg -> fail "trace is not valid JSON: %s" msg
  in
  let events =
    match mem "traceEvents" doc with
    | Obs.Json.List l -> l
    | _ -> fail "trace has no traceEvents array"
  in
  if events = [] then fail "trace has no events";
  let span_names = Hashtbl.create 16 in
  List.iter
    (fun e ->
      let str k =
        match mem k e with
        | Obs.Json.String s -> s
        | _ -> fail "event missing string field %S" k
      in
      let num k =
        match Obs.Json.number (mem k e) with
        | Some v -> v
        | None -> fail "event missing numeric field %S" k
      in
      match str "ph" with
      | "X" ->
        Hashtbl.replace span_names (str "name") ();
        if num "dur" < 0. then fail "negative span duration";
        ignore (num "ts");
        ignore (num "pid");
        ignore (num "tid")
      | "M" -> () (* thread-name metadata *)
      | ph -> fail "unexpected event phase %S" ph)
    events;
  List.iter
    (fun name ->
      if not (Hashtbl.mem span_names name) then fail "trace has no %S spans" name)
    [ "arch.epoch"; "arch.observe"; "ode.integrate" ];

  (* {2 Metrics: one snapshot per epoch with the expected series} *)
  let lines = read_lines metrics_path in
  if List.length lines <> 2 then
    fail "expected 2 metric snapshots (one per epoch), got %d" (List.length lines);
  List.iteri
    (fun i line ->
      let snap =
        try Obs.Json.parse line
        with Obs.Json.Parse_error msg -> fail "metrics line %d invalid: %s" (i + 1) msg
      in
      (match mem "label" snap with
      | Obs.Json.String label ->
        if label <> Printf.sprintf "epoch %d" (i + 1) then
          fail "line %d labelled %S" (i + 1) label
      | _ -> fail "metrics line %d has no label" (i + 1));
      let counter name =
        match mem name (mem "counters" snap) with
        | Obs.Json.Int n -> n
        | _ -> fail "metrics line %d: no counter %S" (i + 1) name
      in
      let gauge name =
        match mem name (mem "gauges" snap) with
        | Obs.Json.Null -> Float.nan (* non-finite degrades to null *)
        | v -> (
          match Obs.Json.number v with
          | Some x -> x
          | None -> fail "metrics line %d: no gauge %S" (i + 1) name)
      in
      if counter "ode.integrations" <= 0 then fail "no ODE activity recorded";
      if counter "ode.rhs_evals" <= counter "ode.steps" then
        fail "rhs_evals should dominate steps";
      if counter "guard.evaluations" <= 0 then fail "no guard activity recorded";
      if counter "arch.epochs" <> i + 1 then fail "arch.epochs out of step";
      if gauge "arch.epoch" <> float_of_int (i + 1) then fail "arch.epoch gauge out of step";
      if gauge "arch.archive_size" <= 0. then fail "empty archive reported";
      if gauge "arch.evaluations" <= 0. then fail "no evaluations reported";
      ignore (gauge "arch.hypervolume"))
    lines;
  (* The final epoch has a front, so its hypervolume must be a finite,
     positive number. *)
  (match List.rev lines with
  | last :: _ -> (
    match Obs.Json.number (mem "arch.hypervolume" (mem "gauges" (Obs.Json.parse last))) with
    | Some hv when Float.is_finite hv && hv >= 0. -> ()
    | Some hv -> fail "final hypervolume not finite: %g" hv
    | None -> fail "final snapshot has no hypervolume gauge")
  | [] -> fail "no metric lines");

  (* {2 Sharded: one merged trace with per-process lanes} *)
  let run_sharded () =
    Obs.Span.reset ();
    Obs.Metrics.reset ();
    Obs.Span.set_enabled true;
    Obs.Metrics.set_enabled true;
    let _r, _stats =
      Shard.Supervisor.run ~seed:7
        ~config:{ Shard.Supervisor.default with Shard.Supervisor.shards = 2 }
        ~generations:4 ode_problem cfg
    in
    Obs.Span.set_enabled false;
    Obs.Metrics.set_enabled false;
    let doc = Obs.Span.export_chrome () in
    Obs.Span.reset ();
    Obs.Metrics.reset ();
    doc
  in
  let sharded = run_sharded () in
  (* Same Chrome schema as the in-process trace. *)
  let sharded_events =
    match mem "traceEvents" sharded with
    | Obs.Json.List l -> l
    | _ -> fail "sharded trace has no traceEvents array"
  in
  let process_labels = Hashtbl.create 4 in
  List.iter
    (fun e ->
      match mem "ph" e with
      | Obs.Json.String "X" -> ()
      | Obs.Json.String "M" ->
        if mem "name" e = Obs.Json.String "process_name" then
          Hashtbl.replace process_labels (mem "name" (mem "args" e)) ()
      | _ -> fail "sharded trace has a non-X/M event")
    sharded_events;
  List.iter
    (fun label ->
      if not (Hashtbl.mem process_labels (Obs.Json.String label)) then
        fail "sharded trace has no %S process lane" label)
    [ "supervisor"; "shard 0"; "shard 1" ];
  let evs = Obs.Span.events_of_chrome sharded in
  let pids = List.sort_uniq compare (List.map (fun (e : Obs.Span.event) -> e.Obs.Span.pid) evs) in
  if pids <> [ 0; 1; 2 ] then
    fail "sharded trace pid lanes are %s, want [0;1;2]"
      (String.concat ";" (List.map string_of_int pids));
  (* Events listed in (pid, id) order with unique ids per lane. *)
  let keys = List.map (fun (e : Obs.Span.event) -> (e.Obs.Span.pid, e.Obs.Span.id)) evs in
  if List.sort_uniq compare keys <> keys then fail "sharded trace events not in (pid, id) order";
  if
    not
      (List.exists
         (fun (e : Obs.Span.event) -> e.Obs.Span.pid > 0 && e.Obs.Span.name = "worker.step")
         evs)
  then fail "worker lanes carry no worker.step spans";
  if
    not
      (List.exists
         (fun (e : Obs.Span.event) -> e.Obs.Span.pid = 0 && e.Obs.Span.name = "shard.epoch")
         evs)
  then fail "supervisor lane carries no shard.epoch spans";

  (* {2 Sharded: trace byte-deterministic modulo timestamps} *)
  let normalize doc =
    let strip_time = function
      | Obs.Json.Obj fields ->
        Obs.Json.Obj (List.filter (fun (k, _) -> k <> "ts" && k <> "dur") fields)
      | j -> j
    in
    match mem "traceEvents" doc with
    | Obs.Json.List l -> Obs.Json.to_string (Obs.Json.List (List.map strip_time l))
    | _ -> fail "trace has no traceEvents array"
  in
  if normalize (run_sharded ()) <> normalize sharded then
    fail "sharded trace not deterministic modulo ts/dur";
  print_endline "trace-check: ok"
