(* End-to-end check of [robustlint --fix], attached to `dune runtest`
   through the lint-fix-check alias.

   The fixture tree under [fix_fixtures/] is copied into a scratch
   directory, compiled with [ocamlc -bin-annot], linted through the
   driver API, fixed with {!Lint.Patch}, then the loop closes: the fixed
   tree must recompile, re-lint to zero findings, and a second fix pass
   must be a no-op (byte-identical files, no modifications reported). *)

let failures = ref 0

let check name ok =
  if not ok then begin
    incr failures;
    Printf.eprintf "fix-check FAIL: %s\n%!" name
  end

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path s =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc s)

let scratch = "fix_scratch"
let fixture_dir = "fix_fixtures"

let reset_scratch () =
  if Sys.file_exists scratch then
    Array.iter (fun f -> Sys.remove (Filename.concat scratch f)) (Sys.readdir scratch)
  else Sys.mkdir scratch 0o755

let fixture_files () =
  Sys.readdir fixture_dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".ml")
  |> List.sort String.compare

let compile () =
  let mls = fixture_files () |> List.map Filename.quote |> String.concat " " in
  let cmd = Printf.sprintf "cd %s && ocamlc -bin-annot -c %s" (Filename.quote scratch) mls in
  Sys.command cmd = 0

(* [force_lib] because the lib-only rules (R7 here) must treat the
   scratch tree as library code despite its path. *)
let lint () = Lint.Driver.run ~force_lib:true ~source_root:scratch [ scratch ]

let () =
  reset_scratch ();
  List.iter
    (fun f ->
      write_file (Filename.concat scratch f) (read_file (Filename.concat fixture_dir f)))
    (fixture_files ());
  check "fixture tree compiles before fixing" (compile ());

  let before = lint () in
  check "fixture tree has findings before fixing" (before.findings <> []);
  check "every pre-fix finding carries a span fix"
    (List.for_all (fun (f : Lint.Finding.t) -> f.fix <> []) before.findings);

  let clean_before = read_file (Filename.concat scratch "clean.ml") in
  let modified = Lint.Patch.apply ~source_root:scratch before.findings in
  check "fix reports the violating files as modified"
    (modified = [ "comparator.ml"; "float_eq.ml"; "hashiter.ml" ]);
  check "fix leaves the clean file untouched"
    (read_file (Filename.concat scratch "clean.ml") = clean_before);

  check "fixed tree recompiles" (compile ());
  let after = lint () in
  check "fixed tree re-lints to zero findings" (after.findings = []);

  let snapshot = List.map (fun f -> read_file (Filename.concat scratch f)) (fixture_files ()) in
  let again = Lint.Patch.apply ~source_root:scratch after.findings in
  check "second fix pass modifies nothing" (again = []);
  let snapshot' = List.map (fun f -> read_file (Filename.concat scratch f)) (fixture_files ()) in
  check "second fix pass is byte-identical" (snapshot = snapshot');

  if !failures > 0 then exit 1;
  print_endline "fix-check: ok"
