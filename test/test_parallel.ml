(* Tests for the persistent domain pool: scheduling correctness,
   exception discipline, nesting, the default-pool lifecycle — and the
   determinism contract: pooled evaluation at any worker count must be
   bit-for-bit equal to the sequential path, across the archipelago,
   robustness ensembles and front metrics. *)

(* {1 Pool basics} *)

let with_pool domains f =
  let pool = Parallel.Pool.create ~domains () in
  Fun.protect ~finally:(fun () -> Parallel.Pool.shutdown pool) (fun () -> f pool)

let test_parallel_for_covers_every_index () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let n = 103 in
          let out = Array.make n 0 in
          Parallel.Pool.parallel_for pool ~n (fun i -> out.(i) <- (i * i) + 1);
          Alcotest.(check (array int))
            (Printf.sprintf "squares at %d domains" domains)
            (Array.init n (fun i -> (i * i) + 1))
            out))
    [ 1; 2; 4 ]

let test_parallel_map_orders_results () =
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          let n = 57 in
          let got = Parallel.Pool.parallel_map pool ~n (fun i -> 3 * i) in
          Alcotest.(check (array int))
            (Printf.sprintf "ordered at %d domains" domains)
            (Array.init n (fun i -> 3 * i))
            got))
    [ 1; 3 ]

let test_chunk_sizes_do_not_change_results () =
  with_pool 4 (fun pool ->
      let n = 64 in
      let expected = Array.init n (fun i -> i - 7) in
      List.iter
        (fun chunk ->
          Alcotest.(check (array int))
            (Printf.sprintf "chunk %d" chunk)
            expected
            (Parallel.Pool.parallel_map ~chunk pool ~n (fun i -> i - 7)))
        [ 1; 3; 64; 1000 ])

let test_empty_and_sequential () =
  with_pool 2 (fun pool ->
      Alcotest.(check (array int)) "n = 0 yields [||]" [||]
        (Parallel.Pool.parallel_map pool ~n:0 (fun i -> i));
      Alcotest.(check (array int)) "sequential escape hatch" [| 0; 1; 2 |]
        (Parallel.Pool.parallel_map ~sequential:true pool ~n:3 (fun i -> i)))

let test_exception_is_lowest_failing_index () =
  (* Tasks cover contiguous index ranges in order, so the re-raised
     failure is the lowest failing item — a deterministic choice, not
     first-by-wall-clock. *)
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          Alcotest.(check string)
            (Printf.sprintf "lowest index wins at %d domains" domains)
            "item-10"
            (match
               Parallel.Pool.parallel_for ~chunk:1 pool ~n:40 (fun i ->
                   if i = 10 || i = 23 then failwith (Printf.sprintf "item-%d" i))
             with
            | () -> "no exception"
            | exception Failure msg -> msg)))
    [ 1; 2; 4 ]

let test_pool_survives_a_failed_job () =
  with_pool 2 (fun pool ->
      (match Parallel.Pool.parallel_for pool ~n:8 (fun _ -> failwith "boom") with
      | () -> Alcotest.fail "expected the job to raise"
      | exception Failure _ -> ());
      Alcotest.(check (array int)) "next job runs normally" [| 0; 1; 2; 3 |]
        (Parallel.Pool.parallel_map pool ~n:4 (fun i -> i)))

let test_nested_submission_runs_inline () =
  with_pool 2 (fun pool ->
      let got =
        Parallel.Pool.parallel_map ~chunk:1 pool ~n:4 (fun i ->
            (* A submission from inside a task must not deadlock on the
               pool; it degrades to an inline loop. *)
            Array.fold_left ( + ) 0
              (Parallel.Pool.parallel_map pool ~n:5 (fun j -> (10 * i) + j)))
      in
      Alcotest.(check (array int)) "nested totals"
        (Array.init 4 (fun i ->
             Array.fold_left ( + ) 0 (Array.init 5 (fun j -> (10 * i) + j))))
        got)

let test_shutdown_degrades_to_inline () =
  let pool = Parallel.Pool.create ~domains:3 () in
  Alcotest.(check int) "domains" 3 (Parallel.Pool.domains pool);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  Alcotest.(check (array int)) "after shutdown, submissions run inline" [| 0; 2; 4 |]
    (Parallel.Pool.parallel_map pool ~n:3 (fun i -> 2 * i))

let test_invalid_arguments () =
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  expect_invalid "create: 0 domains" (fun () -> Parallel.Pool.create ~domains:0 ());
  expect_invalid "set_default_domains: 0" (fun () -> Parallel.Pool.set_default_domains 0);
  with_pool 2 (fun pool ->
      expect_invalid "parallel_for: negative n" (fun () ->
          Parallel.Pool.parallel_for pool ~n:(-1) (fun _ -> ()));
      expect_invalid "parallel_for: chunk 0" (fun () ->
          Parallel.Pool.parallel_for ~chunk:0 pool ~n:4 (fun _ -> ()));
      expect_invalid "parallel_map: negative n" (fun () ->
          ignore (Parallel.Pool.parallel_map pool ~n:(-2) (fun i -> i))))

let test_default_pool_lifecycle () =
  Parallel.Pool.set_default_domains 2;
  let a = Parallel.Pool.get () in
  Alcotest.(check int) "requested width" 2 (Parallel.Pool.domains a);
  Alcotest.(check bool) "get is cached" true (Parallel.Pool.get () == a);
  Parallel.Pool.set_default_domains 2;
  Alcotest.(check bool) "same width keeps the pool" true (Parallel.Pool.get () == a);
  Parallel.Pool.set_default_domains 3;
  let b = Parallel.Pool.get () in
  Alcotest.(check bool) "new width replaces the pool" true (b != a);
  Alcotest.(check int) "new width" 3 (Parallel.Pool.domains b);
  Parallel.Pool.set_default_domains 1

(* {1 Per-item RNG streams} *)

let test_rng_stream_is_pure () =
  let draws seed index =
    let rng = Numerics.Rng.stream ~seed index in
    List.init 5 (fun _ -> Numerics.Rng.float rng)
  in
  Alcotest.(check (list (float 0.))) "same (seed, index), same stream"
    (draws 42 7) (draws 42 7);
  Alcotest.(check bool) "different index, different stream" true
    (draws 42 7 <> draws 42 8);
  Alcotest.(check bool) "different seed, different stream" true
    (draws 42 7 <> draws 43 7);
  Alcotest.(check bool) "negative index refused" true
    (match Numerics.Rng.stream ~seed:1 (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {1 Determinism: pooled = sequential, bit for bit} *)

let sorted_objs front =
  List.sort compare (List.map (fun s -> Array.to_list s.Moo.Solution.f) front)

(* The paper's photo problem through the archipelago: islands evolved on
   the pool and populations evaluated on the pool must reproduce the
   sequential run exactly at every worker count. *)
let test_photo_archipelago_pooled_equals_sequential () =
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in
  let problem = Photo.Leaf.problem env in
  let run ~pool =
    let cfg =
      {
        Pmo2.Archipelago.default_config with
        migration_period = 2;
        guard_penalty = Some 1e12;
        parallel = Option.is_some pool;
        nsga2 = { Ea.Nsga2.default_config with pop_size = 8; pool };
      }
    in
    Pmo2.Archipelago.run ~seed:2011 ~generations:4 problem cfg
  in
  let reference = run ~pool:None in
  List.iter
    (fun domains ->
      Parallel.Pool.set_default_domains domains;
      let pooled = run ~pool:(Some (Parallel.Pool.get ())) in
      Alcotest.(check bool)
        (Printf.sprintf "front bit-identical at %d domains" domains)
        true
        (sorted_objs reference.Pmo2.Archipelago.front
        = sorted_objs pooled.Pmo2.Archipelago.front);
      Alcotest.(check int)
        (Printf.sprintf "evaluations identical at %d domains" domains)
        reference.Pmo2.Archipelago.evaluations pooled.Pmo2.Archipelago.evaluations;
      Alcotest.(check bool)
        (Printf.sprintf "guard telemetry identical at %d domains" domains)
        true
        (reference.Pmo2.Archipelago.guard_stats = pooled.Pmo2.Archipelago.guard_stats))
    [ 1; 2; 4 ];
  Parallel.Pool.set_default_domains 1

let test_gamma_pool_deterministic_across_widths () =
  let f x = sin (x.(0) *. 3.) +. (x.(1) *. x.(1)) -. cos x.(2) in
  let x = [| 1.0; 0.5; 2.0 |] in
  let gamma pool ~sequential =
    Robustness.Yield.gamma_pool ~pool ~sequential ~seed:7 ~f ~trials:500 x
  in
  with_pool 1 (fun p1 ->
      let reference = gamma p1 ~sequential:true in
      Alcotest.(check bool) "some trials survive" true
        (reference.Robustness.Yield.survivors > 0);
      List.iter
        (fun domains ->
          with_pool domains (fun pool ->
              Alcotest.(check bool)
                (Printf.sprintf "yield identical at %d domains" domains)
                true
                (gamma pool ~sequential:false = reference)))
        [ 1; 2; 4 ]);
  (* The local profile built on top inherits the property. *)
  with_pool 2 (fun pool ->
      let profile sequential =
        Robustness.Screen.local_analysis_pool ~pool ~sequential ~seed:11 ~f ~trials:200 x
      in
      Alcotest.(check bool) "local profile pooled = sequential" true
        (profile false = profile true));
  with_pool 3 (fun pool ->
      let worst sequential =
        Robustness.Screen.worst_of_pool ~pool ~sequential ~seed:13 ~f ~trials:300 x
      in
      Alcotest.(check bool) "worst case pooled = sequential" true
        (worst false = worst true))

let test_front_metrics_pooled_equal_sequential () =
  (* A 3-objective cloud, so the pooled HSO top level actually engages. *)
  let rng = Numerics.Rng.create 3 in
  let points =
    List.init 60 (fun _ ->
        Array.init 3 (fun _ -> Numerics.Rng.float rng))
  in
  let ref_point = [| 1.1; 1.1; 1.1 |] in
  let reference = Moo.Hypervolume.compute ~ref_point points in
  List.iter
    (fun domains ->
      with_pool domains (fun pool ->
          Alcotest.(check bool)
            (Printf.sprintf "hypervolume bit-identical at %d domains" domains)
            true
            (Float.equal reference (Moo.Hypervolume.compute ~pool ~ref_point points))))
    [ 1; 2; 4 ];
  with_pool 2 (fun pool ->
      let contribs = Moo.Hypervolume.contributions ~ref_point points in
      Alcotest.(check bool) "contributions pooled = sequential" true
        (Moo.Hypervolume.contributions ~pool ~ref_point points = contribs);
      let fronts =
        let sol f = { Moo.Solution.x = [||]; f; v = 0. } in
        [
          [ sol [| 0.1; 0.9 |]; sol [| 0.5; 0.5 |] ];
          [ sol [| 0.5; 0.5 |]; sol [| 0.9; 0.1 |] ];
        ]
      in
      Alcotest.(check bool) "coverage pooled = sequential" true
        (Moo.Coverage.analyze ~pool fronts = Moo.Coverage.analyze fronts))

(* {1 Pool observability} *)

let test_pool_counters_tick_when_enabled () =
  Obs.Metrics.set_enabled true;
  let before = (Parallel.Pool.stats ()).Parallel.Pool.tasks in
  with_pool 2 (fun pool ->
      Parallel.Pool.parallel_for ~chunk:1 pool ~n:16 (fun _ -> ()));
  Obs.Metrics.set_enabled false;
  let after = (Parallel.Pool.stats ()).Parallel.Pool.tasks in
  Alcotest.(check bool) "pool.tasks advanced by the job" true (after - before >= 16)

let () =
  Alcotest.run "parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "parallel_for covers every index" `Quick
            test_parallel_for_covers_every_index;
          Alcotest.test_case "parallel_map orders results" `Quick
            test_parallel_map_orders_results;
          Alcotest.test_case "chunking never changes results" `Quick
            test_chunk_sizes_do_not_change_results;
          Alcotest.test_case "empty and sequential paths" `Quick test_empty_and_sequential;
          Alcotest.test_case "lowest failing index wins" `Quick
            test_exception_is_lowest_failing_index;
          Alcotest.test_case "pool survives a failed job" `Quick
            test_pool_survives_a_failed_job;
          Alcotest.test_case "nested submission runs inline" `Quick
            test_nested_submission_runs_inline;
          Alcotest.test_case "shutdown degrades to inline" `Quick
            test_shutdown_degrades_to_inline;
          Alcotest.test_case "invalid arguments refused" `Quick test_invalid_arguments;
          Alcotest.test_case "default pool lifecycle" `Quick test_default_pool_lifecycle;
        ] );
      ( "rng",
        [ Alcotest.test_case "stream is pure per (seed, index)" `Quick test_rng_stream_is_pure ] );
      ( "determinism",
        [
          Alcotest.test_case "photo archipelago pooled = sequential" `Slow
            test_photo_archipelago_pooled_equals_sequential;
          Alcotest.test_case "robustness ensembles pooled = sequential" `Quick
            test_gamma_pool_deterministic_across_widths;
          Alcotest.test_case "front metrics pooled = sequential" `Quick
            test_front_metrics_pooled_equal_sequential;
        ] );
      ( "observability",
        [
          Alcotest.test_case "pool counters tick when enabled" `Quick
            test_pool_counters_tick_when_enabled;
        ] );
    ]
