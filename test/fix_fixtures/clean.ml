(* Fix fixture: already clean — the fixer must leave this file alone. *)
let total xs = List.fold_left ( +. ) 0.0 xs

let within tol a b = Float.abs (a -. b) <= tol
