(* Fix fixture: a bare [compare] used at [float -> float -> int] must be
   swapped for [Float.compare] token-for-token. *)
let sorted (xs : float array) =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let ordered (xs : float list) = List.sort compare xs
