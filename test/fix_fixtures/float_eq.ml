(* Fix fixture: float [=] / [<>] must be rewritten to [Float.equal]
   forms by [robustlint --fix]. *)
let same (a : float) (b : float) = a = b

let differs (a : float) (b : float) = a <> b

let near (x : float) = x = 0.5 || x <> 1.0
