(* Fix fixture: [Hashtbl.iter] in library code must be rewritten by
   [robustlint --fix] to a sorted-key traversal (with a justified
   suppression on the collecting fold it generates).  The second walk
   spreads its arguments over several lines — the span edits must keep
   the argument expressions in place and only replace the text around
   them. *)
let render (tbl : (string, int) Hashtbl.t) =
  let out = Buffer.create 64 in
  Hashtbl.iter (fun k v -> Buffer.add_string out (k ^ "=" ^ string_of_int v ^ ";")) tbl;
  Buffer.contents out

let total (tbl : (string, float) Hashtbl.t) =
  let sum = ref 0.0 in
  Hashtbl.iter
    (fun _k v ->
      let scaled = v *. 2.0 in
      sum := !sum +. scaled)
    tbl;
  !sum
