(* Tests for the multi-objective core: dominance, archive, hypervolume,
   coverage, mining, scalarization. *)

let sol ?(v = 0.) f = { Moo.Solution.x = [||]; f; v }

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* {1 Problem} *)

let sphere2 =
  Moo.Problem.make ~name:"sphere2" ~n_obj:2 ~lower:[| -1.; -1. |] ~upper:[| 1.; 1. |]
    (fun x -> [| x.(0) ** 2.; x.(1) ** 2. |])

let test_problem_clip () =
  let c = Moo.Problem.clip sphere2 [| -5.; 5. |] in
  Alcotest.(check bool) "clipped" true (c.(0) = -1. && c.(1) = 1.)

let test_problem_random () =
  let rng = Numerics.Rng.create 1 in
  for _ = 1 to 100 do
    let x = Moo.Problem.random_solution sphere2 rng in
    Array.iter (fun xi -> if xi < -1. || xi > 1. then Alcotest.fail "outside box") x
  done

let test_problem_violation_default () =
  check_float "no violation fn" 0. (Moo.Problem.violation_of sphere2 [| 0.; 0. |])

let test_solution_evaluate () =
  let s = Moo.Solution.evaluate sphere2 [| 0.5; -0.5 |] in
  check_float "f0" 0.25 s.Moo.Solution.f.(0);
  Alcotest.(check bool) "feasible" true (Moo.Solution.feasible s)

(* {1 Dominance} *)

let test_dominance_basic () =
  let open Moo.Dominance in
  Alcotest.(check bool) "strict" true (compare_objectives [| 1.; 1. |] [| 2.; 2. |] = Dominates);
  Alcotest.(check bool) "dominated" true (compare_objectives [| 2.; 2. |] [| 1.; 1. |] = Dominated);
  Alcotest.(check bool) "incomparable" true
    (compare_objectives [| 1.; 2. |] [| 2.; 1. |] = Incomparable);
  Alcotest.(check bool) "equal" true (compare_objectives [| 1.; 2. |] [| 1.; 2. |] = Equal)

let test_dominance_weak () =
  let open Moo.Dominance in
  (* Better in one objective, equal in the other: still dominates. *)
  Alcotest.(check bool) "weak dominance" true
    (compare_objectives [| 1.; 2. |] [| 1.; 3. |] = Dominates)

let test_constrained_dominance () =
  let open Moo.Dominance in
  let feasible = sol [| 5.; 5. |] in
  let infeasible = sol ~v:1. [| 0.; 0. |] in
  Alcotest.(check bool) "feasible beats infeasible" true (constrained feasible infeasible = Dominates);
  let worse = sol ~v:2. [| 0.; 0. |] in
  Alcotest.(check bool) "less violating wins" true (constrained infeasible worse = Dominates)

let test_non_dominated_filter () =
  let sols = [ sol [| 1.; 3. |]; sol [| 2.; 2. |]; sol [| 3.; 1. |]; sol [| 3.; 3. |] ] in
  let nd = Moo.Dominance.non_dominated sols in
  Alcotest.(check int) "three survive" 3 (List.length nd)

let test_non_dominated_dedup () =
  let sols = [ sol [| 1.; 1. |]; sol [| 1.; 1. |] ] in
  Alcotest.(check int) "duplicates collapse" 1 (List.length (Moo.Dominance.non_dominated sols))

(* {1 Archive} *)

let test_archive_keeps_non_dominated () =
  let a = Moo.Archive.create () in
  Alcotest.(check bool) "first insert" true (Moo.Archive.add a (sol [| 1.; 3. |]));
  Alcotest.(check bool) "incomparable insert" true (Moo.Archive.add a (sol [| 3.; 1. |]));
  Alcotest.(check bool) "dominated rejected" false (Moo.Archive.add a (sol [| 4.; 4. |]));
  Alcotest.(check int) "size" 2 (Moo.Archive.size a)

let test_archive_removes_dominated () =
  let a = Moo.Archive.create () in
  ignore (Moo.Archive.add a (sol [| 2.; 2. |]));
  ignore (Moo.Archive.add a (sol [| 3.; 3. |]));
  (* [| 3.; 3. |] was rejected; add a dominator of [| 2.; 2. |]. *)
  ignore (Moo.Archive.add a (sol [| 1.; 1. |]));
  Alcotest.(check int) "only the dominator remains" 1 (Moo.Archive.size a)

let test_archive_capacity () =
  let a = Moo.Archive.create ~capacity:5 () in
  for i = 0 to 19 do
    let t = float_of_int i /. 19. in
    ignore (Moo.Archive.add a (sol [| t; 1. -. t |]))
  done;
  Alcotest.(check int) "capacity respected" 5 (Moo.Archive.size a);
  (* Extremes survive crowding-based pruning. *)
  let fs = List.map (fun s -> s.Moo.Solution.f.(0)) (Moo.Archive.to_list a) in
  Alcotest.(check bool) "min extreme kept" true (List.exists (fun f -> f = 0.) fs);
  Alcotest.(check bool) "max extreme kept" true (List.exists (fun f -> f = 1.) fs)

let test_archive_merge () =
  let a = Moo.Archive.create () and b = Moo.Archive.create () in
  ignore (Moo.Archive.add a (sol [| 1.; 3. |]));
  ignore (Moo.Archive.add b (sol [| 3.; 1. |]));
  ignore (Moo.Archive.add b (sol [| 0.5; 3.5 |]));
  let m = Moo.Archive.merge a b in
  Alcotest.(check int) "merged" 3 (Moo.Archive.size m)

(* {1 Hypervolume} *)

let test_hv_single_point () =
  check_float "unit square" 1.
    (Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] [ [| 0.; 0. |] ])

let test_hv_staircase () =
  (* Two points forming a staircase. *)
  let hv = Moo.Hypervolume.compute ~ref_point:[| 2.; 2. |] [ [| 0.; 1. |]; [| 1.; 0. |] ] in
  (* Union of [0,2]×[1,2] and [1,2]×[0,2]: 2 + 2 - 1 = 3. *)
  check_float "staircase" 3. hv

let test_hv_dominated_ignored () =
  let base = Moo.Hypervolume.compute ~ref_point:[| 2.; 2. |] [ [| 0.; 0. |] ] in
  let more =
    Moo.Hypervolume.compute ~ref_point:[| 2.; 2. |] [ [| 0.; 0. |]; [| 1.; 1. |] ]
  in
  check_float "dominated adds nothing" base more

let test_hv_outside_ref_ignored () =
  let hv = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] [ [| 2.; 0. |] ] in
  check_float "outside ref" 0. hv

let test_hv_3d_cube () =
  check_float "unit cube" 1.
    (Moo.Hypervolume.compute ~ref_point:[| 1.; 1.; 1. |] [ [| 0.; 0.; 0. |] ])

let test_hv_3d_two_boxes () =
  (* Points (0,0,0.5) and (0.5,0.5,0): volumes 0.5 and 0.25 overlapping
     0.25·0.5 = 0.125 → union 0.625. *)
  let hv =
    Moo.Hypervolume.compute ~ref_point:[| 1.; 1.; 1. |]
      [ [| 0.; 0.; 0.5 |]; [| 0.5; 0.5; 0. |] ]
  in
  check_float ~tol:1e-9 "3d union" 0.625 hv

let test_hv_normalized () =
  let hv =
    Moo.Hypervolume.normalized ~ref_point:[| 10.; 10. |] ~ideal:[| 0.; 0. |]
      [ [| 0.; 0. |] ]
  in
  check_float "normalized full" 1. hv

let test_hv_contributions () =
  (* Staircase of two points plus one dominated: contributions must be the
     non-overlapping rectangles, and 0 for the dominated point. *)
  let pts = [ [| 0.; 1. |]; [| 1.; 0. |]; [| 1.5; 1.5 |] ] in
  match Moo.Hypervolume.contributions ~ref_point:[| 2.; 2. |] pts with
  | [ (_, c1); (_, c2); (_, c3) ] ->
    (* Each extreme point exclusively owns a 1x2 strip minus the 1x1
       overlap core: union 3, removing one leaves 2 → contribution 1. *)
    check_float "first strip" 1. c1;
    check_float "second strip" 1. c2;
    check_float "dominated contributes 0" 0. c3
  | _ -> Alcotest.fail "shape"

let test_hv_contributions_sum_bound () =
  (* Contributions never exceed the total volume. *)
  let pts = [ [| 0.2; 0.7 |]; [| 0.5; 0.4 |]; [| 0.8; 0.1 |] ] in
  let total = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] pts in
  let sum =
    List.fold_left (fun acc (_, c) -> acc +. c) 0.
      (Moo.Hypervolume.contributions ~ref_point:[| 1.; 1. |] pts)
  in
  Alcotest.(check bool) "sum <= total" true (sum <= total +. 1e-12)

let test_hv_monotone_in_points () =
  let pts = [ [| 0.2; 0.8 |]; [| 0.5; 0.5 |] ] in
  let hv1 = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] pts in
  let hv2 = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] ([| 0.8; 0.1 |] :: pts) in
  Alcotest.(check bool) "adding a point cannot shrink hv" true (hv2 >= hv1)

(* Degenerate fronts — the shapes the archipelago's per-epoch observer can
   hand the hypervolume in early epochs (tiny archives, repeated points,
   points that touch the fixed reference). *)

let test_hv_duplicate_points () =
  (* A duplicated point must count once, not twice. *)
  let once = Moo.Hypervolume.compute ~ref_point:[| 2.; 2. |] [ [| 1.; 1. |] ] in
  let twice =
    Moo.Hypervolume.compute ~ref_point:[| 2.; 2. |] [ [| 1.; 1. |]; [| 1.; 1. |] ]
  in
  check_float "duplicate counted once" once twice;
  check_float "value" 1. twice

let test_hv_point_on_ref_boundary () =
  (* A point with one coordinate equal to the reference spans a degenerate
     (zero-width) box in that dimension: volume 0, and it must not poison
     the rest of the front. *)
  check_float "on boundary alone" 0.
    (Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] [ [| 1.; 0. |] ]);
  check_float "boundary point adds nothing" 0.25
    (Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] [ [| 1.; 0. |]; [| 0.5; 0.5 |] ])

let test_hv_point_at_ref () =
  (* The reference point itself dominates no volume. *)
  check_float "at ref" 0. (Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] [ [| 1.; 1. |] ])

(* {1 Coverage} *)

let test_coverage_disjoint_fronts () =
  let f1 = [ sol [| 1.; 4. |]; sol [| 2.; 3. |] ] in
  let f2 = [ sol [| 3.; 2. |]; sol [| 4.; 1. |] ] in
  let union = Moo.Coverage.union_front [ f1; f2 ] in
  Alcotest.(check int) "union keeps all" 4 (List.length union);
  check_float "gp f1" 0.5 (Moo.Coverage.gp f1 union);
  check_float "rp f1" 1.0 (Moo.Coverage.rp f1 union)

let test_coverage_dominating_front () =
  let winner = [ sol [| 0.; 0. |] ] in
  let loser = [ sol [| 1.; 1. |]; sol [| 2.; 0.5 |] ] in
  let union = Moo.Coverage.union_front [ winner; loser ] in
  check_float "winner gp" 1.0 (Moo.Coverage.gp winner union);
  check_float "loser rp" 0.0 (Moo.Coverage.rp loser union);
  check_float "loser gp" 0.0 (Moo.Coverage.gp loser union)

let test_coverage_analyze () =
  let f1 = [ sol [| 1.; 2. |] ] and f2 = [ sol [| 2.; 1. |] ] in
  match Moo.Coverage.analyze [ f1; f2 ] with
  | [ r1; r2 ] ->
    Alcotest.(check int) "points f1" 1 r1.Moo.Coverage.points;
    check_float "gp each" 0.5 r1.Moo.Coverage.gp;
    check_float "rp each" 1.0 r2.Moo.Coverage.rp
  | _ -> Alcotest.fail "expected two reports"

(* {1 Mine} *)

let line_front k =
  List.init k (fun i ->
      let t = float_of_int i /. float_of_int (k - 1) in
      sol [| t; 1. -. t |])

let test_mine_ideal_nadir () =
  let front = line_front 5 in
  let ideal = Moo.Mine.ideal_point front in
  let nadir = Moo.Mine.nadir_point front in
  Alcotest.(check bool) "ideal" true (ideal.(0) = 0. && ideal.(1) = 0.);
  Alcotest.(check bool) "nadir" true (nadir.(0) = 1. && nadir.(1) = 1.)

let test_mine_closest_to_ideal () =
  let front = line_front 11 in
  let c = Moo.Mine.closest_to_ideal front in
  (* On the symmetric line the middle point is closest to (0,0). *)
  check_float "middle" 0.5 c.Moo.Solution.f.(0)

let test_mine_closest_respects_normalization () =
  (* With wildly different scales, normalization matters. *)
  let front = [ sol [| 0.; 1000. |]; sol [| 1.; 500. |]; sol [| 2.; 0. |] ] in
  let c = Moo.Mine.closest_to_ideal front in
  check_float "center is balanced" 1. c.Moo.Solution.f.(0)

let test_mine_shadow_minima () =
  let front = line_front 5 in
  let shadows = Moo.Mine.shadow_minima front in
  check_float "shadow f0" 0. shadows.(0).Moo.Solution.f.(0);
  check_float "shadow f1" 0. shadows.(1).Moo.Solution.f.(1)

let test_mine_equally_spaced () =
  let front = line_front 101 in
  let picks = Moo.Mine.equally_spaced ~k:5 front in
  Alcotest.(check int) "five picks" 5 (List.length picks);
  let f0s = List.map (fun s -> s.Moo.Solution.f.(0)) picks in
  Alcotest.(check bool) "includes both ends" true
    (List.mem 0. f0s && List.mem 1. f0s)

let test_mine_equally_spaced_small_front () =
  let front = line_front 3 in
  Alcotest.(check int) "whole front returned" 3
    (List.length (Moo.Mine.equally_spaced ~k:10 front))

let test_mine_empty_raises () =
  Alcotest.check_raises "ideal of empty" (Invalid_argument "Mine.ideal_point: empty front")
    (fun () -> ignore (Moo.Mine.ideal_point []))

(* {1 Scalarize} *)

let test_weighted_sum () =
  check_float "weighted" 2.5 (Moo.Scalarize.weighted_sum ~w:[| 0.5; 1. |] [| 1.; 2. |])

let test_tchebycheff () =
  let g = Moo.Scalarize.tchebycheff ~w:[| 1.; 1. |] ~z:[| 0.; 0. |] [| 3.; 2. |] in
  check_float "max term" 3. g

let test_tchebycheff_zero_weight_guard () =
  let g = Moo.Scalarize.tchebycheff ~w:[| 0.; 1. |] ~z:[| 0.; 0. |] [| 1000.; 0.5 |] in
  (* The zero weight is lifted to 1e-6: objective 0 still matters a bit. *)
  Alcotest.(check bool) "guarded" true (g >= 0.5)

let test_uniform_weights_2d () =
  let w = Moo.Scalarize.uniform_weights ~n:5 ~n_obj:2 in
  Alcotest.(check int) "count" 5 (Array.length w);
  Array.iter (fun wi -> check_float "sums to 1" 1. (wi.(0) +. wi.(1))) w

let test_uniform_weights_3d () =
  let w = Moo.Scalarize.uniform_weights ~n:10 ~n_obj:3 in
  Alcotest.(check int) "count" 10 (Array.length w);
  Array.iter
    (fun wi -> check_float ~tol:1e-9 "sums to 1" 1. (wi.(0) +. wi.(1) +. wi.(2)))
    w

(* {1 Benchmarks} *)

let test_benchmark_zdt1_front () =
  let p = Moo.Benchmarks.zdt1 ~n:6 in
  (* On the true front the tail is zero and f2 = 1 - sqrt f1. *)
  let x = [| 0.25; 0.; 0.; 0.; 0.; 0. |] in
  let f = p.Moo.Problem.eval x in
  check_float ~tol:1e-12 "f1" 0.25 f.(0);
  check_float ~tol:1e-12 "f2" 0.5 f.(1)

let test_benchmark_zdt2_front () =
  let p = Moo.Benchmarks.zdt2 ~n:4 in
  let f = p.Moo.Problem.eval [| 0.5; 0.; 0.; 0. |] in
  check_float ~tol:1e-12 "f2 = 1 - f1^2" 0.75 f.(1)

let test_benchmark_zdt3_disconnected () =
  let p = Moo.Benchmarks.zdt3 ~n:4 in
  (* The sine term makes f2 non-monotone in f1 along the g=1 slice. *)
  let f2_at f1 = (p.Moo.Problem.eval [| f1; 0.; 0.; 0. |]).(1) in
  Alcotest.(check bool) "non-monotone" true
    (f2_at 0.1 < f2_at 0.05 || f2_at 0.3 < f2_at 0.2 || f2_at 0.8 < f2_at 0.7
     || f2_at 0.2 > f2_at 0.25)

let test_benchmark_dtlz2_sphere () =
  let p = Moo.Benchmarks.dtlz2 ~n:7 ~n_obj:3 in
  (* With the distance variables at 0.5, the front satisfies Σ fᵢ² = 1. *)
  let x = [| 0.3; 0.7; 0.5; 0.5; 0.5; 0.5; 0.5 |] in
  let f = p.Moo.Problem.eval x in
  let norm2 = Array.fold_left (fun acc fi -> acc +. (fi *. fi)) 0. f in
  check_float ~tol:1e-9 "unit sphere" 1. norm2

let test_benchmark_fonseca_bounds () =
  let p = Moo.Benchmarks.fonseca in
  let f = p.Moo.Problem.eval [| 0.; 0.; 0. |] in
  Alcotest.(check bool) "objectives in [0,1)" true
    (f.(0) >= 0. && f.(0) < 1. && f.(1) >= 0. && f.(1) < 1.)

let test_benchmark_true_fronts () =
  let tf = Moo.Benchmarks.true_front_zdt1 ~k:11 in
  Alcotest.(check int) "k points" 11 (List.length tf);
  List.iter
    (fun f -> check_float ~tol:1e-12 "on front" (1. -. sqrt f.(0)) f.(1))
    tf;
  (* The analytic front is mutually non-dominated. *)
  Alcotest.(check int) "non-dominated" 11
    (List.length (Moo.Dominance.non_dominated_objectives tf))

(* {1 Properties} *)

let front_gen =
  QCheck.make
    ~print:(fun pts ->
      String.concat " " (List.map (fun p -> Printf.sprintf "(%g,%g)" p.(0) p.(1)) pts))
    QCheck.Gen.(
      list_size (1 -- 12)
        (pair (float_bound_inclusive 1.) (float_bound_inclusive 1.)
        >|= fun (a, b) -> [| a; b |]))

let prop_hv_bounded =
  QCheck.Test.make ~name:"hypervolume within reference box" ~count:200 front_gen
    (fun pts ->
      let hv = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] pts in
      hv >= 0. && hv <= 1. +. 1e-9)

let prop_hv_matches_3d_lift =
  (* Lifting 2-D points into 3-D with a zero third coordinate must give
     the same hypervolume against a lifted reference with span 1. *)
  QCheck.Test.make ~name:"2d/3d consistency" ~count:100 front_gen (fun pts ->
      let hv2 = Moo.Hypervolume.compute ~ref_point:[| 1.; 1. |] pts in
      let lifted = List.map (fun p -> [| p.(0); p.(1); 0. |]) pts in
      let hv3 = Moo.Hypervolume.compute ~ref_point:[| 1.; 1.; 1. |] lifted in
      Float.abs (hv2 -. hv3) <= 1e-9)

let prop_non_dominated_mutual =
  QCheck.Test.make ~name:"non-dominated set is mutually incomparable" ~count:200
    front_gen (fun pts ->
      let sols = List.map (fun f -> sol f) pts in
      let nd = Moo.Dominance.non_dominated sols in
      List.for_all
        (fun a ->
          List.for_all
            (fun b -> a == b || not (Moo.Dominance.dominates a b))
            nd)
        nd)

let prop_union_front_covers =
  QCheck.Test.make ~name:"gp of fronts sums to >= 1" ~count:100
    (QCheck.pair front_gen front_gen) (fun (p1, p2) ->
      let f1 = List.map (fun f -> sol f) p1 and f2 = List.map (fun f -> sol f) p2 in
      let union = Moo.Coverage.union_front [ f1; f2 ] in
      union = []
      || Moo.Coverage.gp f1 union +. Moo.Coverage.gp f2 union >= 1. -. 1e-9)

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "moo"
    [
      ( "problem",
        [
          Alcotest.test_case "clip" `Quick test_problem_clip;
          Alcotest.test_case "random in box" `Quick test_problem_random;
          Alcotest.test_case "default violation" `Quick test_problem_violation_default;
          Alcotest.test_case "evaluate" `Quick test_solution_evaluate;
        ] );
      ( "dominance",
        [
          Alcotest.test_case "basic relations" `Quick test_dominance_basic;
          Alcotest.test_case "weak dominance" `Quick test_dominance_weak;
          Alcotest.test_case "constrained rules" `Quick test_constrained_dominance;
          Alcotest.test_case "non-dominated filter" `Quick test_non_dominated_filter;
          Alcotest.test_case "duplicate collapse" `Quick test_non_dominated_dedup;
        ] );
      ( "archive",
        [
          Alcotest.test_case "keeps non-dominated" `Quick test_archive_keeps_non_dominated;
          Alcotest.test_case "removes dominated" `Quick test_archive_removes_dominated;
          Alcotest.test_case "capacity pruning" `Quick test_archive_capacity;
          Alcotest.test_case "merge" `Quick test_archive_merge;
        ] );
      ( "hypervolume",
        [
          Alcotest.test_case "single point" `Quick test_hv_single_point;
          Alcotest.test_case "staircase" `Quick test_hv_staircase;
          Alcotest.test_case "dominated ignored" `Quick test_hv_dominated_ignored;
          Alcotest.test_case "outside ref ignored" `Quick test_hv_outside_ref_ignored;
          Alcotest.test_case "3d cube" `Quick test_hv_3d_cube;
          Alcotest.test_case "3d union" `Quick test_hv_3d_two_boxes;
          Alcotest.test_case "normalized" `Quick test_hv_normalized;
          Alcotest.test_case "contributions" `Quick test_hv_contributions;
          Alcotest.test_case "contribution sum bound" `Quick test_hv_contributions_sum_bound;
          Alcotest.test_case "monotone in points" `Quick test_hv_monotone_in_points;
          Alcotest.test_case "duplicate points" `Quick test_hv_duplicate_points;
          Alcotest.test_case "point on ref boundary" `Quick test_hv_point_on_ref_boundary;
          Alcotest.test_case "point at ref" `Quick test_hv_point_at_ref;
        ] );
      ( "coverage",
        [
          Alcotest.test_case "disjoint fronts" `Quick test_coverage_disjoint_fronts;
          Alcotest.test_case "dominating front" `Quick test_coverage_dominating_front;
          Alcotest.test_case "analyze" `Quick test_coverage_analyze;
        ] );
      ( "mine",
        [
          Alcotest.test_case "ideal and nadir" `Quick test_mine_ideal_nadir;
          Alcotest.test_case "closest to ideal" `Quick test_mine_closest_to_ideal;
          Alcotest.test_case "normalization matters" `Quick test_mine_closest_respects_normalization;
          Alcotest.test_case "shadow minima" `Quick test_mine_shadow_minima;
          Alcotest.test_case "equally spaced" `Quick test_mine_equally_spaced;
          Alcotest.test_case "small front" `Quick test_mine_equally_spaced_small_front;
          Alcotest.test_case "empty raises" `Quick test_mine_empty_raises;
        ] );
      ( "benchmarks",
        [
          Alcotest.test_case "zdt1 analytic front" `Quick test_benchmark_zdt1_front;
          Alcotest.test_case "zdt2 analytic front" `Quick test_benchmark_zdt2_front;
          Alcotest.test_case "zdt3 disconnected" `Quick test_benchmark_zdt3_disconnected;
          Alcotest.test_case "dtlz2 sphere" `Quick test_benchmark_dtlz2_sphere;
          Alcotest.test_case "fonseca bounds" `Quick test_benchmark_fonseca_bounds;
          Alcotest.test_case "true fronts" `Quick test_benchmark_true_fronts;
        ] );
      ( "scalarize",
        [
          Alcotest.test_case "weighted sum" `Quick test_weighted_sum;
          Alcotest.test_case "tchebycheff" `Quick test_tchebycheff;
          Alcotest.test_case "zero-weight guard" `Quick test_tchebycheff_zero_weight_guard;
          Alcotest.test_case "uniform weights 2d" `Quick test_uniform_weights_2d;
          Alcotest.test_case "uniform weights 3d" `Quick test_uniform_weights_3d;
        ] );
      ( "properties",
        q
          [
            prop_hv_bounded;
            prop_hv_matches_3d_lift;
            prop_non_dominated_mutual;
            prop_union_front_covers;
          ] );
    ]
