(* Fixture: a justified allow comment must silence R9. *)
let bail () =
  (* robustlint: allow R9 — fixture exercises the suppression path only *)
  Stdlib.exit 0
