(* Fixture: a marker on its own line of a multiline block comment still
   suppresses — suppression is line-based by design. *)
let approx (a : float) (b : float) =
  (* tolerated here because:
     robustlint: allow R1 — fixture: marker inside a multiline comment *)
  a = b
