(* Fixture: an allow for the wrong rule must not mask a different rule. *)
let close_enough (a : float) (b : float) =
  (* robustlint: allow R2 — wrong rule on purpose: must not silence R1 *)
  a = b
