(* Fixture: R5 must fire on assert in library code. *)
let checked n =
  assert (n >= 0);
  n
