(* Fixture: R10 on a Cache.Memo-shaped guarded record.  [peek] reads a
   mutable field off-lock and must be flagged; [bump]'s accesses run
   under the learned wrapper and must not; [incr_hits] is only ever
   called under the lock, so the locked-only fixpoint must exempt it. *)
type t = { lock : Mutex.t; mutable hits : int; mutable size : int }

let make () = { lock = Mutex.create (); hits = 0; size = 0 }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let incr_hits t = t.hits <- t.hits + 1

let bump t =
  with_lock t @@ fun () ->
  incr_hits t;
  t.size <- t.size + 1

let peek t = t.size
