(* Fixture: suppressions must resolve inside nested modules, and a
   violation two modules deep must still be found. *)
module Inner = struct
  let exact (x : float) =
    (* robustlint: allow R1 — fixture: sentinel equality inside a nested module *)
    x = infinity
end

module Deeper = struct
  module Core = struct
    let bad (x : float) = x = 0.0
  end
end
