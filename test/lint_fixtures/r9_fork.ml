(* Fixture: raw fork outside Shard must be flagged (R9). *)
let clone () = Unix.fork ()
