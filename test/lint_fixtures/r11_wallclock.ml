(* Fixture: R11 — wall-clock reads outside Obs.Clock and lib/shard. *)
let stamp () = Unix.gettimeofday ()

let cpu () = Sys.time ()
