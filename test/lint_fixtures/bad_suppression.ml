(* Fixture: an allow comment without a justification must not suppress. *)
let is_zero (x : float) =
  (* robustlint: allow R1 *)
  x = 0.
