(* Fixture: R1 must fire on polymorphic equality at a float type. *)
let same_point (a : float) (b : float) = a = b
