(* Fixture: an R2 source and an intermediate hop — the taint must travel
   [roll] -> [choose] -> ip_caller.ml.  [seeded] is justified-suppressed
   and must NOT taint its callers. *)
let roll n = Random.int n

let choose (xs : int array) = xs.(roll (Array.length xs))

let seeded () =
  (* robustlint: allow R2 — fixture: documented fixed-seed draw, reproducible by construction *)
  Random.bits ()
