(* Fixture: R6 must fire on module-toplevel mutable state. *)
let registry : (string, int) Hashtbl.t = Hashtbl.create 8
let register name v = Hashtbl.replace registry name v
