(* Fixture: the interprocedural findings all land in this file.
   [floats_deduped] instantiates ip_helper's generic compare at a float
   type (R1 across modules); [has] hits a stdlib carrier at float;
   [pick] calls into code that reaches Random (R2 flow); [quiet] calls a
   suppressed source and must stay clean. *)
let floats_deduped (xs : float array) = Ip_helper.dedup_sorted xs

let has (x : float) (xs : float list) = List.mem x xs

let pick (xs : int array) = Ip_source.choose xs

let quiet () = Ip_source.seeded ()
