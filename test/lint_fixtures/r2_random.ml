(* Fixture: R2 must fire on Stdlib.Random. *)
let roll () = Random.int 6
