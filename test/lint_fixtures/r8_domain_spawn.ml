(* Fixture: R8 must fire on raw Domain.spawn. *)
let run f = Domain.join (Domain.spawn f)
