(* Fixture: R10 double acquisition (Stdlib.Mutex self-deadlocks) and a
   guarded-global operation off the module's mutex. *)
let lock = Mutex.create ()

(* robustlint: allow R6 — fixture: the guarded-global shape under test needs a real global *)
let total = ref 0

let add n = Mutex.protect lock (fun () -> Mutex.protect lock (fun () -> total := !total + n))

let sneak () = total := 0
