(* Fixture: a same-line marker on the very last line of the file. *)
let nearly (a : float) (b : float) = a = b (* robustlint: allow R1 — fixture: final-line marker *)
