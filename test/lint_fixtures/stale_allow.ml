(* Fixture: a justified allow whose finding no longer fires — the
   --check-stale audit must flag it. *)
let tripled (x : int) = x * 3
(* robustlint: allow R1 — fixture: stale on purpose, nothing fires on this line *)
