(* Fixture: a justified allow comment must silence the finding. *)
let is_sentinel (x : float) =
  (* robustlint: allow R1 — the sentinel is an exact value, never computed *)
  x = neg_infinity
