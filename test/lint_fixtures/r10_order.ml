(* Fixture: R10 lock-order cycle — [a] then [b] in one path, [b] then
   [a] in another deadlocks under contention. *)
let a = Mutex.create ()

let b = Mutex.create ()

let forward f = Mutex.protect a (fun () -> Mutex.protect b f)

let backward f = Mutex.protect b (fun () -> Mutex.protect a f)
