(* Fixture: R4 must fire on an exception-swallowing catch-all. *)
let parse s = try int_of_string s with _ -> 0
