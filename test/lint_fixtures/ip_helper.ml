(* Fixture: a generic helper comparing at ['a] is harmless here — the
   hazard appears only where a call site pins ['a] to a float type
   (ip_caller.ml).  Per-occurrence R1 must NOT fire in this file. *)
let dedup_sorted (xs : 'a array) =
  let out = ref [] in
  Array.iter
    (fun x -> match !out with y :: _ when compare x y = 0 -> () | _ -> out := x :: !out)
    xs;
  Array.of_list (List.rev !out)
