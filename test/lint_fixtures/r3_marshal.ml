(* Fixture: R3 must fire on Marshal outside Runtime.Checkpoint. *)
let to_bytes v = Marshal.to_string v []
