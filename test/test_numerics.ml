(* Unit and property tests for the numerics substrate. *)

let feq ?(tol = 1e-9) a b = Float.abs (a -. b) <= tol

let check_float ?(tol = 1e-9) msg expected actual =
  if not (feq ~tol expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* {1 Rng} *)

let test_rng_determinism () =
  let a = Numerics.Rng.create 7 and b = Numerics.Rng.create 7 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Numerics.Rng.bits64 a) (Numerics.Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Numerics.Rng.create 1 and b = Numerics.Rng.create 2 in
  Alcotest.(check bool) "different streams" false
    (Numerics.Rng.bits64 a = Numerics.Rng.bits64 b)

let test_rng_float_range () =
  let r = Numerics.Rng.create 3 in
  for _ = 1 to 10_000 do
    let x = Numerics.Rng.float r in
    if x < 0. || x >= 1. then Alcotest.failf "float out of [0,1): %g" x
  done

let test_rng_uniform_bounds () =
  let r = Numerics.Rng.create 4 in
  for _ = 1 to 1000 do
    let x = Numerics.Rng.uniform r (-3.) 5. in
    if x < -3. || x >= 5. then Alcotest.failf "uniform out of range: %g" x
  done

let test_rng_uniform_mean () =
  let r = Numerics.Rng.create 5 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Numerics.Rng.uniform r 0. 10.
  done;
  check_float ~tol:0.1 "mean of U(0,10)" 5.0 (!acc /. float_of_int n)

let test_rng_int_range () =
  let r = Numerics.Rng.create 6 in
  let counts = Array.make 7 0 in
  for _ = 1 to 70_000 do
    let k = Numerics.Rng.int r 7 in
    if k < 0 || k >= 7 then Alcotest.failf "int out of range: %d" k;
    counts.(k) <- counts.(k) + 1
  done;
  Array.iteri
    (fun k c ->
      if c < 8_000 || c > 12_000 then Alcotest.failf "bucket %d skewed: %d" k c)
    counts

let test_rng_gaussian_moments () =
  let r = Numerics.Rng.create 8 in
  let n = 100_000 in
  let xs = Array.init n (fun _ -> Numerics.Rng.gaussian ~mu:2. ~sigma:3. r) in
  check_float ~tol:0.05 "gaussian mean" 2.0 (Numerics.Stats.mean xs);
  check_float ~tol:0.1 "gaussian sd" 3.0 (Numerics.Stats.stddev xs)

let test_rng_split_independence () =
  let master = Numerics.Rng.create 9 in
  let a = Numerics.Rng.split master in
  let b = Numerics.Rng.split master in
  (* The two split streams should differ from each other. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Numerics.Rng.bits64 a = Numerics.Rng.bits64 b then incr same
  done;
  Alcotest.(check int) "split streams differ" 0 !same

let test_rng_shuffle_permutation () =
  let r = Numerics.Rng.create 10 in
  let a = Array.init 50 (fun i -> i) in
  Numerics.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_sample_indices () =
  let r = Numerics.Rng.create 11 in
  for _ = 1 to 100 do
    let s = Numerics.Rng.sample_indices r ~n:20 ~k:8 in
    Alcotest.(check int) "k samples" 8 (Array.length s);
    let seen = Hashtbl.create 8 in
    Array.iter
      (fun i ->
        if i < 0 || i >= 20 then Alcotest.failf "index out of range: %d" i;
        if Hashtbl.mem seen i then Alcotest.fail "duplicate index";
        Hashtbl.add seen i ())
      s
  done

let test_rng_bernoulli_bias () =
  let r = Numerics.Rng.create 12 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Numerics.Rng.bernoulli r 0.3 then incr hits
  done;
  check_float ~tol:0.01 "bernoulli(0.3)" 0.3 (float_of_int !hits /. float_of_int n)

(* {1 Vec} *)

let test_vec_arith () =
  let x = [| 1.; 2.; 3. |] and y = [| 4.; 5.; 6. |] in
  Alcotest.(check bool) "add" true (Numerics.Vec.approx_equal (Numerics.Vec.add x y) [| 5.; 7.; 9. |]);
  Alcotest.(check bool) "sub" true (Numerics.Vec.approx_equal (Numerics.Vec.sub y x) [| 3.; 3.; 3. |]);
  Alcotest.(check bool) "mul" true (Numerics.Vec.approx_equal (Numerics.Vec.mul x y) [| 4.; 10.; 18. |]);
  Alcotest.(check bool) "scale" true (Numerics.Vec.approx_equal (Numerics.Vec.scale 2. x) [| 2.; 4.; 6. |])

let test_vec_dot_norms () =
  let x = [| 3.; 4. |] in
  check_float "dot" 25. (Numerics.Vec.dot x x);
  check_float "norm2" 5. (Numerics.Vec.norm2 x);
  check_float "norm1" 7. (Numerics.Vec.norm1 x);
  check_float "norm_inf" 4. (Numerics.Vec.norm_inf x);
  check_float "dist2" 5. (Numerics.Vec.dist2 x [| 0.; 0. |])

let test_vec_axpy () =
  let x = [| 1.; 1. |] and y = [| 1.; 2. |] in
  Numerics.Vec.axpy 3. x y;
  Alcotest.(check bool) "axpy" true (Numerics.Vec.approx_equal y [| 4.; 5. |])

let test_vec_clamp_lerp () =
  let lo = [| 0.; 0. |] and hi = [| 1.; 1. |] in
  Alcotest.(check bool) "clamp" true
    (Numerics.Vec.approx_equal (Numerics.Vec.clamp ~lo ~hi [| -1.; 2. |]) [| 0.; 1. |]);
  Alcotest.(check bool) "lerp mid" true
    (Numerics.Vec.approx_equal (Numerics.Vec.lerp [| 0.; 0. |] [| 2.; 4. |] 0.5) [| 1.; 2. |])

let test_vec_stats () =
  let x = [| 1.; 2.; 3.; 4. |] in
  check_float "sum" 10. (Numerics.Vec.sum x);
  check_float "mean" 2.5 (Numerics.Vec.mean x);
  check_float "min" 1. (Numerics.Vec.min x);
  check_float "max" 4. (Numerics.Vec.max x)

(* {1 Matrix} *)

let test_matrix_identity () =
  let i3 = Numerics.Matrix.identity 3 in
  let x = [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "I x = x" true (Numerics.Vec.approx_equal (Numerics.Matrix.mv i3 x) x)

let test_matrix_matmul () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  let b = Numerics.Matrix.of_arrays [| [| 5.; 6. |]; [| 7.; 8. |] |] in
  let c = Numerics.Matrix.matmul a b in
  let expected = Numerics.Matrix.of_arrays [| [| 19.; 22. |]; [| 43.; 50. |] |] in
  Alcotest.(check bool) "matmul" true (Numerics.Matrix.approx_equal c expected)

let test_matrix_transpose () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2.; 3. |]; [| 4.; 5.; 6. |] |] in
  let t = Numerics.Matrix.transpose a in
  Alcotest.(check int) "rows" 3 (Numerics.Matrix.rows t);
  Alcotest.(check int) "cols" 2 (Numerics.Matrix.cols t);
  check_float "t(0,1)" 4. (Numerics.Matrix.get t 0 1);
  Alcotest.(check bool) "double transpose" true
    (Numerics.Matrix.approx_equal a (Numerics.Matrix.transpose t))

let test_matrix_mv_tmv () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |]; [| 5.; 6. |] |] in
  let x = [| 1.; 1. |] in
  Alcotest.(check bool) "mv" true
    (Numerics.Vec.approx_equal (Numerics.Matrix.mv a x) [| 3.; 7.; 11. |]);
  let y = [| 1.; 1.; 1. |] in
  Alcotest.(check bool) "tmv" true
    (Numerics.Vec.approx_equal (Numerics.Matrix.tmv a y) [| 9.; 12. |])

let test_matrix_rows_ops () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 3.; 4. |] |] in
  Numerics.Matrix.swap_rows a 0 1;
  Alcotest.(check bool) "swap" true
    (Numerics.Vec.approx_equal (Numerics.Matrix.row a 0) [| 3.; 4. |]);
  Numerics.Matrix.set_row a 0 [| 9.; 9. |];
  check_float "set_row" 9. (Numerics.Matrix.get a 0 1)

let test_matrix_norms () =
  let a = Numerics.Matrix.of_arrays [| [| 3.; 4. |]; [| 0.; 0. |] |] in
  check_float "frobenius" 5. (Numerics.Matrix.norm_frobenius a);
  check_float "inf norm" 7. (Numerics.Matrix.norm_inf a)

(* {1 Lu} *)

let random_system rng n =
  let a =
    Numerics.Matrix.init n n (fun _ _ -> Numerics.Rng.uniform rng (-5.) 5.)
  in
  (* Diagonal dominance guarantees a well-conditioned system. *)
  for i = 0 to n - 1 do
    Numerics.Matrix.set a i i (Numerics.Matrix.get a i i +. 10.)
  done;
  let x = Array.init n (fun _ -> Numerics.Rng.uniform rng (-2.) 2.) in
  (a, x)

let test_lu_solve () =
  let rng = Numerics.Rng.create 21 in
  for n = 1 to 12 do
    let a, x = random_system rng n in
    let b = Numerics.Matrix.mv a x in
    let solved = Numerics.Lu.solve_matrix a b in
    Alcotest.(check bool)
      (Printf.sprintf "solve n=%d" n)
      true
      (Numerics.Vec.approx_equal ~tol:1e-8 x solved)
  done

let test_lu_det () =
  let a = Numerics.Matrix.of_arrays [| [| 2.; 0. |]; [| 0.; 3. |] |] in
  check_float "diag det" 6. (Numerics.Lu.det (Numerics.Lu.factor a));
  let b = Numerics.Matrix.of_arrays [| [| 0.; 1. |]; [| 1.; 0. |] |] in
  check_float "swap det" (-1.) (Numerics.Lu.det (Numerics.Lu.factor b))

let test_lu_inverse () =
  let rng = Numerics.Rng.create 22 in
  let a, _ = random_system rng 6 in
  let inv = Numerics.Lu.inverse (Numerics.Lu.factor a) in
  let prod = Numerics.Matrix.matmul a inv in
  Alcotest.(check bool) "A A⁻¹ = I" true
    (Numerics.Matrix.approx_equal ~tol:1e-8 prod (Numerics.Matrix.identity 6))

let test_lu_singular () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| 2.; 4. |] |] in
  Alcotest.check_raises "singular" Numerics.Lu.Singular (fun () ->
      ignore (Numerics.Lu.factor a))

let test_lu_refine () =
  let rng = Numerics.Rng.create 23 in
  let a, x = random_system rng 8 in
  let b = Numerics.Matrix.mv a x in
  let f = Numerics.Lu.factor a in
  let x0 = Numerics.Lu.solve f b in
  let x1 = Numerics.Lu.refine a f b x0 in
  let r1 = Numerics.Vec.norm2 (Numerics.Vec.sub b (Numerics.Matrix.mv a x1)) in
  Alcotest.(check bool) "refined residual tiny" true (r1 <= 1e-8)

(* {1 Qr} *)

let test_qr_square_solve () =
  let rng = Numerics.Rng.create 24 in
  let a, x = random_system rng 5 in
  let b = Numerics.Matrix.mv a x in
  let solved = Numerics.Qr.least_squares a b in
  Alcotest.(check bool) "qr square" true (Numerics.Vec.approx_equal ~tol:1e-8 x solved)

let test_qr_overdetermined () =
  (* Fit y = 2 + 3 t by least squares on noisy-free samples: exact. *)
  let ts = [| 0.; 1.; 2.; 3.; 4. |] in
  let a = Numerics.Matrix.init 5 2 (fun i j -> if j = 0 then 1. else ts.(i)) in
  let b = Array.map (fun t -> 2. +. (3. *. t)) ts in
  let coef = Numerics.Qr.least_squares a b in
  check_float ~tol:1e-10 "intercept" 2. coef.(0);
  check_float ~tol:1e-10 "slope" 3. coef.(1)

let test_qr_residual_orthogonal () =
  (* In least squares the residual is orthogonal to the column space. *)
  let rng = Numerics.Rng.create 25 in
  let a = Numerics.Matrix.init 8 3 (fun _ _ -> Numerics.Rng.uniform rng (-1.) 1.) in
  let b = Array.init 8 (fun _ -> Numerics.Rng.uniform rng (-1.) 1.) in
  let x = Numerics.Qr.least_squares a b in
  let r = Numerics.Vec.sub b (Numerics.Matrix.mv a x) in
  let atr = Numerics.Matrix.tmv a r in
  Alcotest.(check bool) "Aᵀr = 0" true (Numerics.Vec.norm_inf atr <= 1e-8)

let test_qr_rank_deficient () =
  let a = Numerics.Matrix.of_arrays [| [| 1.; 1. |]; [| 1.; 1. |]; [| 1.; 1. |] |] in
  Alcotest.check_raises "rank deficient" Numerics.Qr.Rank_deficient (fun () ->
      ignore (Numerics.Qr.least_squares a [| 1.; 2.; 3. |]))

(* {1 Ode} *)

let test_rk4_exponential () =
  (* y' = -y, y(0)=1 → y(1) = e⁻¹ *)
  let f _t y = [| -.y.(0) |] in
  let r = Numerics.Ode.rk4 ~f ~t0:0. ~y0:[| 1. |] ~dt:0.01 ~steps:100 in
  check_float ~tol:1e-8 "e^-1" (exp (-1.)) r.Numerics.Ode.y.(0)

let test_dopri5_harmonic () =
  (* y'' = -y as a system; energy must be conserved over 10 periods. *)
  let f _t y = [| y.(1); -.y.(0) |] in
  let t1 = 20. *. Float.pi in
  let r = Numerics.Ode.dopri5 ~rtol:1e-9 ~atol:1e-12 ~f ~t0:0. ~y0:[| 1.; 0. |] ~t1 () in
  check_float ~tol:1e-5 "cos back to 1" 1. r.Numerics.Ode.y.(0);
  check_float ~tol:1e-5 "sin back to 0" 0. r.Numerics.Ode.y.(1)

let test_dopri5_adapts () =
  let f _t y = [| -.y.(0) |] in
  let r = Numerics.Ode.dopri5 ~f ~t0:0. ~y0:[| 1. |] ~t1:5. () in
  Alcotest.(check bool) "takes steps" true (r.Numerics.Ode.stats.steps > 5);
  check_float ~tol:1e-4 "value" (exp (-5.)) r.Numerics.Ode.y.(0)

let test_dopri5_observer () =
  let count = ref 0 in
  let f _t y = [| -.y.(0) |] in
  let r =
    Numerics.Ode.dopri5 ~observer:(fun _ _ -> incr count) ~f ~t0:0. ~y0:[| 1. |] ~t1:1. ()
  in
  Alcotest.(check int) "observer per accepted step" r.Numerics.Ode.stats.steps !count

let test_implicit_euler_stiff () =
  (* Very stiff linear decay: λ = -1000.  Explicit RK4 at dt=0.01 would
     explode; backward Euler must stay stable and accurate. *)
  let f _t y = [| -1000. *. y.(0) |] in
  let r = Numerics.Ode.implicit_euler ~f ~t0:0. ~y0:[| 1. |] ~t1:0.1 () in
  check_float ~tol:1e-4 "decayed to ~0" 0. r.Numerics.Ode.y.(0)

let test_implicit_matches_explicit () =
  let f _t y = [| y.(1); -.y.(0) -. (0.5 *. y.(1)) |] in
  let a = Numerics.Ode.dopri5 ~rtol:1e-8 ~atol:1e-10 ~f ~t0:0. ~y0:[| 1.; 0. |] ~t1:2. () in
  let b = Numerics.Ode.implicit_euler ~rtol:1e-6 ~atol:1e-9 ~f ~t0:0. ~y0:[| 1.; 0. |] ~t1:2. () in
  Alcotest.(check bool) "integrators agree" true
    (Numerics.Vec.approx_equal ~tol:5e-3 a.Numerics.Ode.y b.Numerics.Ode.y)

let test_numeric_jacobian () =
  (* f(y) = A y has Jacobian A. *)
  let a = Numerics.Matrix.of_arrays [| [| 1.; 2. |]; [| -3.; 0.5 |] |] in
  let f _t y = Numerics.Matrix.mv a y in
  let jac = Numerics.Ode.numeric_jacobian f 0. [| 0.3; -0.7 |] in
  Alcotest.(check bool) "jacobian of linear map" true
    (Numerics.Matrix.approx_equal ~tol:1e-5 a jac)

let test_steady_state_relaxation () =
  (* y' = 1 - y relaxes to 1. *)
  let f _t y = [| 1. -. y.(0) |] in
  match Numerics.Ode.steady_state ~f ~y0:[| 0. |] () with
  | Ok y -> check_float ~tol:1e-4 "steady state" 1. y.(0)
  | Error _ -> Alcotest.fail "did not converge"

let test_steady_state_timeout () =
  (* A constant-derivative system never reaches steady state. *)
  let f _t _y = [| 1. |] in
  match Numerics.Ode.steady_state ~t_max:10. ~f ~y0:[| 0. |] () with
  | Ok _ -> Alcotest.fail "should not converge"
  | Error y -> Alcotest.(check bool) "advanced" true (y.(0) > 5.)

(* {1 Rootfind} *)

let test_bisect () =
  let root = Numerics.Rootfind.bisect ~f:(fun x -> (x *. x) -. 2.) ~lo:0. ~hi:2. () in
  check_float ~tol:1e-10 "sqrt 2" (sqrt 2.) root

let test_newton_scalar () =
  let root =
    Numerics.Rootfind.newton
      ~f:(fun x -> (x *. x *. x) -. 8.)
      ~df:(fun x -> 3. *. x *. x)
      ~x0:3. ()
  in
  check_float ~tol:1e-9 "cube root 8" 2. root

let test_newton_no_convergence () =
  Alcotest.check_raises "flat derivative" Numerics.Rootfind.No_convergence (fun () ->
      ignore
        (Numerics.Rootfind.newton ~f:(fun _ -> 1.) ~df:(fun _ -> 0.) ~x0:0. ()))

let test_newton_nd () =
  (* Intersection of a circle and a line: x² + y² = 4, x = y. *)
  let f v = [| (v.(0) *. v.(0)) +. (v.(1) *. v.(1)) -. 4.; v.(0) -. v.(1) |] in
  let x = Numerics.Rootfind.newton_nd ~f ~x0:[| 1.; 0.5 |] () in
  check_float ~tol:1e-8 "x" (sqrt 2.) x.(0);
  check_float ~tol:1e-8 "y" (sqrt 2.) x.(1)

(* {1 Stats} *)

let test_stats_basic () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Numerics.Stats.mean xs);
  check_float ~tol:1e-9 "variance" (32. /. 7.) (Numerics.Stats.variance xs);
  check_float "min" 2. (Numerics.Stats.minimum xs);
  check_float "max" 9. (Numerics.Stats.maximum xs)

let test_stats_median_quantile () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check_float "median" 2.5 (Numerics.Stats.median xs);
  check_float "q0" 1. (Numerics.Stats.quantile xs 0.);
  check_float "q1" 4. (Numerics.Stats.quantile xs 1.);
  check_float "q25" 1.75 (Numerics.Stats.quantile xs 0.25)

let test_stats_summary () =
  let s = Numerics.Stats.summarize [| 1.; 2.; 3. |] in
  Alcotest.(check int) "n" 3 s.Numerics.Stats.n;
  check_float "mean" 2. s.Numerics.Stats.mean;
  check_float "median" 2. s.Numerics.Stats.median

let test_stats_histogram () =
  let h = Numerics.Stats.histogram ~bins:2 [| 0.; 0.1; 0.9; 1.0 |] in
  Alcotest.(check int) "bins" 2 (Array.length h);
  let total = Array.fold_left (fun acc (_, c) -> acc + c) 0 h in
  Alcotest.(check int) "all counted" 4 total

let test_stats_pearson () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  let ys = Array.map (fun x -> (2. *. x) +. 1.) xs in
  check_float ~tol:1e-12 "perfect correlation" 1. (Numerics.Stats.pearson xs ys);
  let zs = Array.map (fun x -> -.x) xs in
  check_float ~tol:1e-12 "anti correlation" (-1.) (Numerics.Stats.pearson xs zs)

(* {1 Properties} *)

let vec_pair =
  QCheck.make
    ~print:(fun (x, y) ->
      Printf.sprintf "(%s, %s)"
        (String.concat ";" (List.map string_of_float (Array.to_list x)))
        (String.concat ";" (List.map string_of_float (Array.to_list y))))
    QCheck.Gen.(
      let n = 1 -- 8 in
      n >>= fun n ->
      let g = array_size (return n) (float_range (-100.) 100.) in
      pair g g)

let prop_dot_symmetric =
  QCheck.Test.make ~name:"dot is symmetric" ~count:200 vec_pair (fun (x, y) ->
      feq ~tol:1e-6 (Numerics.Vec.dot x y) (Numerics.Vec.dot y x))

let prop_triangle_inequality =
  QCheck.Test.make ~name:"norm triangle inequality" ~count:200 vec_pair (fun (x, y) ->
      Numerics.Vec.norm2 (Numerics.Vec.add x y)
      <= Numerics.Vec.norm2 x +. Numerics.Vec.norm2 y +. 1e-9)

let prop_lu_residual =
  QCheck.Test.make ~name:"lu solve has small residual" ~count:100
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let n = 1 + Numerics.Rng.int rng 10 in
      let a, x = random_system rng n in
      let b = Numerics.Matrix.mv a x in
      let solved = Numerics.Lu.solve_matrix a b in
      Numerics.Vec.dist2 x solved <= 1e-6)

let prop_quantile_monotone =
  QCheck.Test.make ~name:"quantile is monotone in p" ~count:200
    QCheck.(array_of_size (QCheck.Gen.int_range 1 20) (float_range (-50.) 50.))
    (fun xs ->
      let q25 = Numerics.Stats.quantile xs 0.25 in
      let q75 = Numerics.Stats.quantile xs 0.75 in
      q25 <= q75 +. 1e-12)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:100
    QCheck.(pair small_int (array_of_size (QCheck.Gen.int_range 0 30) int))
    (fun (seed, a) ->
      let rng = Numerics.Rng.create seed in
      let b = Array.copy a in
      Numerics.Rng.shuffle rng b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

(* {1 Sparse LU} *)

(* Random sparse nonsingular matrix as columns: a permuted diagonal
   backbone (guarantees structural full rank) plus a few off-diagonal
   entries. *)
let random_sparse_cols rng n =
  let diag_row = Array.init n (fun i -> i) in
  Numerics.Rng.shuffle rng diag_row;
  Array.init n (fun j ->
      let extras =
        List.init (Numerics.Rng.int rng 3) (fun _ ->
            (Numerics.Rng.int rng n, Numerics.Rng.uniform rng (-1.) 1.))
        |> List.filter (fun (i, _) -> i <> diag_row.(j))
        |> List.sort_uniq (fun (a, _) (b, _) -> compare a b)
      in
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        ((diag_row.(j), 2. +. Numerics.Rng.uniform rng 0. 2.) :: extras))

let dense_of_cols n cols =
  let d = Numerics.Matrix.zeros n n in
  Array.iteri (fun j col -> List.iter (fun (i, v) -> Numerics.Matrix.set d i j v) col) cols;
  d

let test_sparse_lu_solve () =
  let rng = Numerics.Rng.create 4242 in
  for _ = 1 to 25 do
    let n = 2 + Numerics.Rng.int rng 20 in
    let cols = random_sparse_cols rng n in
    let f = Numerics.Sparse_lu.factor cols in
    let dense = dense_of_cols n cols in
    let b = Array.init n (fun _ -> Numerics.Rng.uniform rng (-5.) 5.) in
    let x = Numerics.Sparse_lu.solve f b in
    let r = Numerics.Matrix.mv dense x in
    Array.iteri
      (fun i bi ->
        if Float.abs (r.(i) -. bi) > 1e-8 then
          Alcotest.failf "sparse ftran residual %g at row %d (n=%d)" (r.(i) -. bi) i n)
      b
  done

let test_sparse_lu_solve_t () =
  let rng = Numerics.Rng.create 777 in
  for _ = 1 to 25 do
    let n = 2 + Numerics.Rng.int rng 20 in
    let cols = random_sparse_cols rng n in
    let f = Numerics.Sparse_lu.factor cols in
    let dense = dense_of_cols n cols in
    let c = Array.init n (fun _ -> Numerics.Rng.uniform rng (-5.) 5.) in
    let y = Numerics.Sparse_lu.solve_t f c in
    (* Aᵀ y = c  ⇔  y·A_col_j = c_j *)
    let r = Numerics.Matrix.tmv dense y in
    Array.iteri
      (fun j cj ->
        if Float.abs (r.(j) -. cj) > 1e-8 then
          Alcotest.failf "sparse btran residual %g at col %d (n=%d)" (r.(j) -. cj) j n)
      c
  done

let test_sparse_lu_deterministic () =
  let rng = Numerics.Rng.create 99 in
  let cols = random_sparse_cols rng 15 in
  let b = Array.init 15 (fun i -> float_of_int (i - 7)) in
  let x1 = Numerics.Sparse_lu.solve (Numerics.Sparse_lu.factor cols) b in
  let x2 = Numerics.Sparse_lu.solve (Numerics.Sparse_lu.factor cols) b in
  if x1 <> x2 then Alcotest.fail "same input must factor and solve bit-identically"

let test_sparse_lu_singular () =
  (* A column of zeros is rank deficient. *)
  let cols = [| [ (0, 1.) ]; []; [ (2, 1.) ] |] in
  (match Numerics.Sparse_lu.factor cols with
  | exception Numerics.Sparse_lu.Singular -> ()
  | _ -> Alcotest.fail "singular matrix must raise");
  (* Duplicate columns likewise. *)
  let dup = [| [ (0, 1.); (1, 2.) ]; [ (0, 1.); (1, 2.) ]; [ (2, 1.) ] |] in
  match Numerics.Sparse_lu.factor dup with
  | exception Numerics.Sparse_lu.Singular -> ()
  | _ -> Alcotest.fail "duplicate columns must raise"

(* {1 Banded LU} *)

let random_banded rng n ml mu =
  let m = Numerics.Banded.create ~n ~ml ~mu in
  for j = 0 to n - 1 do
    for i = max 0 (j - mu) to min (n - 1) (j + ml) do
      let v =
        if i = j then 3. +. Numerics.Rng.uniform rng 0. 2.
        else Numerics.Rng.uniform rng (-1.) 1.
      in
      Numerics.Banded.set m i j v
    done
  done;
  m

let test_banded_solve () =
  let rng = Numerics.Rng.create 515 in
  for _ = 1 to 25 do
    let n = 2 + Numerics.Rng.int rng 25 in
    let ml = Numerics.Rng.int rng (min n 4) in
    let mu = Numerics.Rng.int rng (min n 4) in
    let m = random_banded rng n ml mu in
    let b = Array.init n (fun _ -> Numerics.Rng.uniform rng (-5.) 5.) in
    let x = Numerics.Banded.solve (Numerics.Banded.factor m) b in
    let r = Numerics.Banded.mv m x in
    Array.iteri
      (fun i bi ->
        if Float.abs (r.(i) -. bi) > 1e-8 then
          Alcotest.failf "banded residual %g at row %d (n=%d ml=%d mu=%d)" (r.(i) -. bi) i n
            ml mu)
      b
  done

let test_banded_matches_dense () =
  let rng = Numerics.Rng.create 616 in
  for _ = 1 to 15 do
    let n = 3 + Numerics.Rng.int rng 12 in
    let ml = Numerics.Rng.int rng (min n 3) in
    let mu = Numerics.Rng.int rng (min n 3) in
    let m = random_banded rng n ml mu in
    let dense =
      Numerics.Matrix.init n n (fun i j -> Numerics.Banded.get m i j)
    in
    let b = Array.init n (fun _ -> Numerics.Rng.uniform rng (-3.) 3.) in
    let xb = Numerics.Banded.solve (Numerics.Banded.factor m) b in
    let xd = Numerics.Lu.solve_matrix dense b in
    if Numerics.Vec.dist2 xb xd > 1e-7 then
      Alcotest.failf "banded and dense solutions diverge (n=%d ml=%d mu=%d)" n ml mu
  done

let test_banded_deterministic () =
  let rng = Numerics.Rng.create 717 in
  let m = random_banded rng 20 2 1 in
  let b = Array.init 20 (fun i -> float_of_int (i - 9) /. 3.) in
  let x1 = Numerics.Banded.solve (Numerics.Banded.factor m) b in
  let x2 = Numerics.Banded.solve (Numerics.Banded.factor m) b in
  if x1 <> x2 then Alcotest.fail "banded factor+solve must be bit-identical"

let test_banded_singular () =
  let m = Numerics.Banded.create ~n:3 ~ml:1 ~mu:1 in
  Numerics.Banded.set m 0 0 1.;
  Numerics.Banded.set m 2 2 1.;
  (* column 1 left entirely zero *)
  (match Numerics.Banded.factor m with
  | exception Numerics.Banded.Singular -> ()
  | _ -> Alcotest.fail "zero column must raise Singular");
  match Numerics.Banded.set m 0 2 5. with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "nonzero entry outside the band must be rejected"

(* {1 Banded finite-difference Jacobian} *)

(* A nonlinear tridiagonal rhs: component i depends exactly on
   y_{i-1}, y_i, y_{i+1} — Jacobian bandwidths ml = mu = 1. *)
let tridiag_rhs _t (y : float array) =
  let n = Array.length y in
  Array.init n (fun i ->
      let left = if i > 0 then y.(i - 1) else 0. in
      let right = if i < n - 1 then y.(i + 1) else 0. in
      (-2. *. y.(i)) +. left +. right +. (0.1 *. sin y.(i)) +. (0.05 *. left *. right))

let test_banded_jacobian_bitwise () =
  (* On a rhs that truly has the declared band structure, the colored
     Jacobian must reproduce the dense forward differences bit for bit
     (same perturbation, same arithmetic, unaffected columns contribute
     exact zeros). *)
  let n = 17 in
  let y = Array.init n (fun i -> 0.3 +. (0.1 *. float_of_int (i mod 5))) in
  let jd = Numerics.Ode.numeric_jacobian tridiag_rhs 0. y in
  let jb = Numerics.Ode.numeric_jacobian_banded tridiag_rhs 0. y ~ml:1 ~mu:1 in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      let d = Numerics.Matrix.get jd i j and b = Numerics.Banded.get jb i j in
      if not (Float.equal d b) then
        Alcotest.failf "J(%d,%d): dense %.17g vs banded %.17g" i j d b
    done
  done

let test_implicit_euler_banded_jac () =
  (* The stiff tier with a declared band structure must agree with the
     dense-Jacobian path on the solution and spend fewer rhs evaluations
     (Jacobian refreshes cost bandwidth + 1 instead of n + 1 evals). *)
  let n = 30 in
  let y0 = Array.init n (fun i -> if i = n / 2 then 1. else 0.) in
  let run jac =
    Numerics.Ode.implicit_euler ~jac ~f:tridiag_rhs ~t0:0. ~t1:1.0 ~y0 ()
  in
  let rd = run Numerics.Ode.Dense in
  let rb = run (Numerics.Ode.Band { ml = 1; mu = 1 }) in
  check_float ~tol:1e-8 "end time" rd.Numerics.Ode.t rb.Numerics.Ode.t;
  Array.iteri
    (fun i di -> check_float ~tol:1e-6 (Printf.sprintf "y(%d)" i) di rb.Numerics.Ode.y.(i))
    rd.Numerics.Ode.y;
  if rb.Numerics.Ode.stats.evals >= rd.Numerics.Ode.stats.evals then
    Alcotest.failf "banded Jacobian should cost fewer rhs evals (banded %d, dense %d)"
      rb.Numerics.Ode.stats.evals rd.Numerics.Ode.stats.evals

let test_jacobian_cols_counter () =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let cols = Obs.Metrics.counter "ode.jacobian_cols" in
      let n = 12 in
      let y = Array.make n 0.5 in
      let (_ : Numerics.Matrix.t) = Numerics.Ode.numeric_jacobian tridiag_rhs 0. y in
      Alcotest.(check int) "dense charges n columns" n (Obs.Metrics.counter_value cols);
      let (_ : Numerics.Banded.mat) =
        Numerics.Ode.numeric_jacobian_banded tridiag_rhs 0. y ~ml:1 ~mu:1
      in
      Alcotest.(check int) "banded adds only bandwidth-many columns" (n + 3)
        (Obs.Metrics.counter_value cols))

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "numerics"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seeds differ" `Quick test_rng_seeds_differ;
          Alcotest.test_case "float range" `Quick test_rng_float_range;
          Alcotest.test_case "uniform bounds" `Quick test_rng_uniform_bounds;
          Alcotest.test_case "uniform mean" `Quick test_rng_uniform_mean;
          Alcotest.test_case "int range+balance" `Quick test_rng_int_range;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_rng_split_independence;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "sample indices" `Quick test_rng_sample_indices;
          Alcotest.test_case "bernoulli bias" `Quick test_rng_bernoulli_bias;
        ] );
      ( "vec",
        [
          Alcotest.test_case "arithmetic" `Quick test_vec_arith;
          Alcotest.test_case "dot and norms" `Quick test_vec_dot_norms;
          Alcotest.test_case "axpy" `Quick test_vec_axpy;
          Alcotest.test_case "clamp and lerp" `Quick test_vec_clamp_lerp;
          Alcotest.test_case "aggregate stats" `Quick test_vec_stats;
        ] );
      ( "matrix",
        [
          Alcotest.test_case "identity" `Quick test_matrix_identity;
          Alcotest.test_case "matmul" `Quick test_matrix_matmul;
          Alcotest.test_case "transpose" `Quick test_matrix_transpose;
          Alcotest.test_case "mv and tmv" `Quick test_matrix_mv_tmv;
          Alcotest.test_case "row operations" `Quick test_matrix_rows_ops;
          Alcotest.test_case "norms" `Quick test_matrix_norms;
        ] );
      ( "lu",
        [
          Alcotest.test_case "solve random systems" `Quick test_lu_solve;
          Alcotest.test_case "determinant" `Quick test_lu_det;
          Alcotest.test_case "inverse" `Quick test_lu_inverse;
          Alcotest.test_case "singular raises" `Quick test_lu_singular;
          Alcotest.test_case "iterative refinement" `Quick test_lu_refine;
        ] );
      ( "sparse-lu",
        [
          Alcotest.test_case "ftran random systems" `Quick test_sparse_lu_solve;
          Alcotest.test_case "btran random systems" `Quick test_sparse_lu_solve_t;
          Alcotest.test_case "deterministic" `Quick test_sparse_lu_deterministic;
          Alcotest.test_case "singular raises" `Quick test_sparse_lu_singular;
        ] );
      ( "banded",
        [
          Alcotest.test_case "solve random systems" `Quick test_banded_solve;
          Alcotest.test_case "matches dense LU" `Quick test_banded_matches_dense;
          Alcotest.test_case "deterministic" `Quick test_banded_deterministic;
          Alcotest.test_case "singular and out-of-band" `Quick test_banded_singular;
          Alcotest.test_case "colored Jacobian bitwise" `Quick test_banded_jacobian_bitwise;
          Alcotest.test_case "implicit euler banded" `Quick test_implicit_euler_banded_jac;
          Alcotest.test_case "jacobian_cols counter" `Quick test_jacobian_cols_counter;
        ] );
      ( "qr",
        [
          Alcotest.test_case "square solve" `Quick test_qr_square_solve;
          Alcotest.test_case "line fit" `Quick test_qr_overdetermined;
          Alcotest.test_case "residual orthogonality" `Quick test_qr_residual_orthogonal;
          Alcotest.test_case "rank deficient raises" `Quick test_qr_rank_deficient;
        ] );
      ( "ode",
        [
          Alcotest.test_case "rk4 exponential" `Quick test_rk4_exponential;
          Alcotest.test_case "dopri5 harmonic" `Quick test_dopri5_harmonic;
          Alcotest.test_case "dopri5 adapts" `Quick test_dopri5_adapts;
          Alcotest.test_case "dopri5 observer" `Quick test_dopri5_observer;
          Alcotest.test_case "implicit euler stiff" `Quick test_implicit_euler_stiff;
          Alcotest.test_case "integrators agree" `Quick test_implicit_matches_explicit;
          Alcotest.test_case "numeric jacobian" `Quick test_numeric_jacobian;
          Alcotest.test_case "steady state" `Quick test_steady_state_relaxation;
          Alcotest.test_case "steady state timeout" `Quick test_steady_state_timeout;
        ] );
      ( "rootfind",
        [
          Alcotest.test_case "bisect" `Quick test_bisect;
          Alcotest.test_case "newton scalar" `Quick test_newton_scalar;
          Alcotest.test_case "newton stagnation" `Quick test_newton_no_convergence;
          Alcotest.test_case "newton nd" `Quick test_newton_nd;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic moments" `Quick test_stats_basic;
          Alcotest.test_case "median and quantiles" `Quick test_stats_median_quantile;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "histogram" `Quick test_stats_histogram;
          Alcotest.test_case "pearson" `Quick test_stats_pearson;
        ] );
      ( "properties",
        q
          [
            prop_dot_symmetric;
            prop_triangle_inequality;
            prop_lu_residual;
            prop_quantile_monotone;
            prop_shuffle_preserves_multiset;
          ] );
    ]
