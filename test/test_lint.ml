(* End-to-end tests of the robustlint static analyzer: the fixture
   library under lint_fixtures/ carries one deliberate violation per
   rule, one justified suppression and one justification-less allow
   comment; the linter must report exactly the violations, at the right
   locations, and honour only the justified suppression.

   The test executable runs in _build/default/test, so the fixture .cmt
   artifacts sit under lint_fixtures/... and compiled source paths
   ("test/lint_fixtures/...") resolve against "..". *)

let fixture_cmts = "lint_fixtures/.lint_fixtures.objs/byte"

let report = lazy (Lint.Driver.run ~force_lib:true ~source_root:".." [ fixture_cmts ])

let findings_in file =
  List.filter
    (fun f -> Filename.basename f.Lint.Finding.file = file)
    (Lazy.force report).Lint.Driver.findings

let check_single_finding ~rule ~file ~line () =
  match findings_in file with
  | [ f ] ->
    Alcotest.(check string) "rule id" rule (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check int) "line" line f.Lint.Finding.line;
    Alcotest.(check string) "file path is build-root relative"
      ("test/lint_fixtures/" ^ file) f.Lint.Finding.file
  | fs -> Alcotest.failf "%s: expected exactly one finding, got %d" file (List.length fs)

let test_every_rule_fires () =
  check_single_finding ~rule:"R1" ~file:"r1_float_eq.ml" ~line:2 ();
  check_single_finding ~rule:"R2" ~file:"r2_random.ml" ~line:2 ();
  check_single_finding ~rule:"R3" ~file:"r3_marshal.ml" ~line:2 ();
  check_single_finding ~rule:"R4" ~file:"r4_swallow.ml" ~line:2 ();
  check_single_finding ~rule:"R5" ~file:"r5_assert.ml" ~line:3 ();
  check_single_finding ~rule:"R6" ~file:"r6_toplevel_state.ml" ~line:2 ();
  check_single_finding ~rule:"R7" ~file:"r7_hashtbl_iter.ml" ~line:2 ();
  check_single_finding ~rule:"R8" ~file:"r8_domain_spawn.ml" ~line:2 ();
  check_single_finding ~rule:"R9" ~file:"r9_fork.ml" ~line:2 ()

let test_no_extra_findings () =
  (* 9 rule fixtures + 1 unjustified allow; the justified ones are silent. *)
  Alcotest.(check int) "total findings" 10
    (List.length (Lazy.force report).Lint.Driver.findings)

let test_justified_suppression_silences () =
  Alcotest.(check int) "suppressed_ok.ml has no finding" 0
    (List.length (findings_in "suppressed_ok.ml"));
  Alcotest.(check int) "r9_suppressed.ml has no finding" 0
    (List.length (findings_in "r9_suppressed.ml"));
  Alcotest.(check int) "two suppressions counted" 2
    (Lazy.force report).Lint.Driver.suppressed

let test_unjustified_suppression_reports () =
  match findings_in "bad_suppression.ml" with
  | [ f ] ->
    Alcotest.(check string) "still R1" "R1" (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check bool) "message flags the missing justification" true
      (let msg = f.Lint.Finding.message in
       let sub = "justification" in
       let n = String.length msg and k = String.length sub in
       let rec scan i = i + k <= n && (String.sub msg i k = sub || scan (i + 1)) in
       scan 0)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_units_counted () =
  (* 12 fixture modules plus the library's generated alias module. *)
  Alcotest.(check int) "units" 13 (Lazy.force report).Lint.Driver.units

let test_missing_dir_yields_no_units () =
  let r = Lint.Driver.run ~source_root:".." [ "no-such-dir" ] in
  Alcotest.(check int) "no units" 0 r.Lint.Driver.units;
  Alcotest.(check int) "no findings" 0 (List.length r.Lint.Driver.findings)

(* {1 Suppression comment parsing} *)

let test_parse_line () =
  let check name expected line rule =
    Alcotest.(check (option bool)) name expected (Lint.Suppress.parse_line line rule)
  in
  check "justified" (Some true)
    "  (* robustlint: allow R1 — exact sentinel *)" Lint.Finding.R1;
  check "ascii justification" (Some true)
    "(* robustlint: allow R5 boundary check documented in the mli *)" Lint.Finding.R5;
  check "bare allow is unjustified" (Some false) "(* robustlint: allow R1 *)" Lint.Finding.R1;
  check "wrong rule does not match" None "(* robustlint: allow R2 — reason *)"
    Lint.Finding.R1;
  check "ordinary code" None "let x = 1 + 2" Lint.Finding.R1

let test_rule_ids_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Lint.Finding.rule_id r ^ " roundtrips")
        true
        (Lint.Finding.rule_of_id (Lint.Finding.rule_id r) = Some r))
    Lint.Finding.all_rules;
  Alcotest.(check bool) "unknown id rejected" true (Lint.Finding.rule_of_id "R10" = None)

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "every rule fires once" `Quick test_every_rule_fires;
          Alcotest.test_case "no extra findings" `Quick test_no_extra_findings;
          Alcotest.test_case "justified suppression silences" `Quick
            test_justified_suppression_silences;
          Alcotest.test_case "unjustified suppression reports" `Quick
            test_unjustified_suppression_reports;
          Alcotest.test_case "units counted" `Quick test_units_counted;
          Alcotest.test_case "missing dir yields no units" `Quick
            test_missing_dir_yields_no_units;
        ] );
      ( "suppress",
        [
          Alcotest.test_case "comment parsing" `Quick test_parse_line;
          Alcotest.test_case "rule ids roundtrip" `Quick test_rule_ids_roundtrip;
        ] );
    ]
