(* End-to-end tests of the robustlint static analyzer: the fixture
   library under lint_fixtures/ carries one deliberate violation per
   rule, interprocedural chains (generic helper instantiated at float,
   nondeterminism reaching an entry point through an intermediate), lock
   discipline shapes (off-lock read, double acquisition, order cycle,
   guarded global), and a spread of suppression-comment corner cases.
   The linter must report exactly the violations, at the right
   locations, and honour only the justified suppressions.

   The test executable runs in _build/default/test, so the fixture .cmt
   artifacts sit under lint_fixtures/... and compiled source paths
   ("test/lint_fixtures/...") resolve against "..". *)

let fixture_cmts = "lint_fixtures/.lint_fixtures.objs/byte"

let report = lazy (Lint.Driver.run ~force_lib:true ~source_root:".." [ fixture_cmts ])

let findings_in file =
  List.filter
    (fun f -> Filename.basename f.Lint.Finding.file = file)
    (Lazy.force report).Lint.Driver.findings

let contains ~sub s =
  let n = String.length s and k = String.length sub in
  let rec scan i = i + k <= n && (String.sub s i k = sub || scan (i + 1)) in
  scan 0

let check_single_finding ~rule ~file ~line () =
  match findings_in file with
  | [ f ] ->
    Alcotest.(check string) "rule id" rule (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check int) "line" line f.Lint.Finding.line;
    Alcotest.(check string) "file path is build-root relative"
      ("test/lint_fixtures/" ^ file) f.Lint.Finding.file
  | fs -> Alcotest.failf "%s: expected exactly one finding, got %d" file (List.length fs)

let test_every_rule_fires () =
  check_single_finding ~rule:"R1" ~file:"r1_float_eq.ml" ~line:2 ();
  check_single_finding ~rule:"R2" ~file:"r2_random.ml" ~line:2 ();
  check_single_finding ~rule:"R3" ~file:"r3_marshal.ml" ~line:2 ();
  check_single_finding ~rule:"R4" ~file:"r4_swallow.ml" ~line:2 ();
  check_single_finding ~rule:"R5" ~file:"r5_assert.ml" ~line:3 ();
  check_single_finding ~rule:"R6" ~file:"r6_toplevel_state.ml" ~line:2 ();
  check_single_finding ~rule:"R7" ~file:"r7_hashtbl_iter.ml" ~line:2 ();
  check_single_finding ~rule:"R8" ~file:"r8_domain_spawn.ml" ~line:2 ();
  check_single_finding ~rule:"R9" ~file:"r9_fork.ml" ~line:2 ()

let test_r11_wall_clock () =
  match findings_in "r11_wallclock.ml" with
  | [ a; b ] ->
    Alcotest.(check string) "first is R11" "R11" (Lint.Finding.rule_id a.Lint.Finding.rule);
    Alcotest.(check string) "second is R11" "R11" (Lint.Finding.rule_id b.Lint.Finding.rule);
    Alcotest.(check (list int)) "lines" [ 2; 4 ] [ a.Lint.Finding.line; b.Lint.Finding.line ]
  | fs -> Alcotest.failf "expected two R11 findings, got %d" (List.length fs)

let test_no_extra_findings () =
  Alcotest.(check int) "total findings" 22
    (List.length (Lazy.force report).Lint.Driver.findings)

let test_units_counted () =
  (* 24 fixture modules plus the library's generated alias module. *)
  Alcotest.(check int) "units" 25 (Lazy.force report).Lint.Driver.units

(* {1 Interprocedural R1: generic helpers instantiated at float} *)

let test_interproc_r1 () =
  let fs = findings_in "ip_caller.ml" in
  Alcotest.(check int) "ip_caller has exactly 3 findings" 3 (List.length fs);
  (match List.find_opt (fun f -> f.Lint.Finding.line = 6) fs with
  | Some f ->
    Alcotest.(check string) "helper call is R1" "R1" (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check bool) "message names the generic helper" true
      (contains ~sub:"Ip_helper.dedup_sorted" f.Lint.Finding.message);
    Alcotest.(check bool) "message points at the helper's definition" true
      (contains ~sub:"ip_helper.ml" f.Lint.Finding.message)
  | None -> Alcotest.fail "no finding at ip_caller.ml:6 (interproc R1 through helper)");
  match List.find_opt (fun f -> f.Lint.Finding.line = 8) fs with
  | Some f ->
    Alcotest.(check string) "builtin carrier is R1" "R1"
      (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check bool) "message names List.mem" true
      (contains ~sub:"List.mem" f.Lint.Finding.message)
  | None -> Alcotest.fail "no finding at ip_caller.ml:8 (List.mem at float)"

let test_taint_flow () =
  (* ip_caller.pick calls Ip_source.choose which reaches Random.int. *)
  let fs = findings_in "ip_caller.ml" in
  (match List.find_opt (fun f -> f.Lint.Finding.line = 10) fs with
  | Some f ->
    Alcotest.(check string) "flow finding is R2" "R2" (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check bool) "message shows the chain" true
      (contains ~sub:"Ip_source.choose" f.Lint.Finding.message)
  | None -> Alcotest.fail "no finding at ip_caller.ml:10 (R2 flow)");
  (* quiet (line 12) calls nothing tainted: it must stay clean. *)
  Alcotest.(check bool) "no finding on the clean call" true
    (not (List.exists (fun f -> f.Lint.Finding.line = 12) fs));
  (* the suppressed source in ip_source (justified allow on line 10's
     Random.bits) must not leak taint: ip_source reports only the one
     active source on line 4. *)
  match findings_in "ip_source.ml" with
  | [ f ] -> Alcotest.(check int) "only the active source reports" 4 f.Lint.Finding.line
  | fs -> Alcotest.failf "ip_source.ml: expected one finding, got %d" (List.length fs)

(* {1 R10 lock discipline} *)

let test_r10_off_lock_read () =
  match findings_in "r10_locks.ml" with
  | [ f ] ->
    Alcotest.(check string) "rule" "R10" (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check int) "line" 26 f.Lint.Finding.line;
    Alcotest.(check bool) "message names the field and the lock" true
      (contains ~sub:"t.size" f.Lint.Finding.message
      && contains ~sub:"lock" f.Lint.Finding.message)
  | fs -> Alcotest.failf "r10_locks.ml: expected one finding, got %d" (List.length fs)

let test_r10_double_and_global () =
  let fs = findings_in "r10_double.ml" in
  Alcotest.(check int) "two findings" 2 (List.length fs);
  (match List.find_opt (fun f -> f.Lint.Finding.line = 8) fs with
  | Some f ->
    Alcotest.(check bool) "double acquisition reported" true
      (contains ~sub:"already held" f.Lint.Finding.message)
  | None -> Alcotest.fail "no double-lock finding at line 8");
  match List.find_opt (fun f -> f.Lint.Finding.line = 10) fs with
  | Some f ->
    Alcotest.(check bool) "guarded global reported" true
      (contains ~sub:"mutex-guarded" f.Lint.Finding.message)
  | None -> Alcotest.fail "no guarded-global finding at line 10"

let test_r10_order_cycle () =
  match findings_in "r10_order.ml" with
  | [ f ] ->
    Alcotest.(check int) "line" 7 f.Lint.Finding.line;
    Alcotest.(check bool) "message reports the cycle" true
      (contains ~sub:"both orders" f.Lint.Finding.message)
  | fs -> Alcotest.failf "r10_order.ml: expected one finding, got %d" (List.length fs)

(* {1 Suppression comments} *)

let test_justified_suppression_silences () =
  List.iter
    (fun file ->
      Alcotest.(check int) (file ^ " has no finding") 0 (List.length (findings_in file)))
    [
      "suppressed_ok.ml";
      "r9_suppressed.ml";
      "suppress_multiline.ml";
      "suppress_lastline.ml";
      "stale_allow.ml";
    ];
  Alcotest.(check int) "seven suppressions counted" 7
    (Lazy.force report).Lint.Driver.suppressed

let test_unjustified_suppression_reports () =
  match findings_in "bad_suppression.ml" with
  | [ f ] ->
    Alcotest.(check string) "still R1" "R1" (Lint.Finding.rule_id f.Lint.Finding.rule);
    Alcotest.(check bool) "message flags the missing justification" true
      (contains ~sub:"justification" f.Lint.Finding.message)
  | fs -> Alcotest.failf "expected exactly one finding, got %d" (List.length fs)

let test_wrong_rule_does_not_mask () =
  (* an allow R2 comment sits right above a R1 violation: it must not
     silence it. *)
  check_single_finding ~rule:"R1" ~file:"suppress_wrongrule.ml" ~line:4 ()

let test_nested_module_scoping () =
  (* Inner.exact is suppressed; Deeper.Core.bad two modules down is not. *)
  check_single_finding ~rule:"R1" ~file:"suppress_nested.ml" ~line:11 ()

let test_parse_line () =
  let check name expected line rule =
    Alcotest.(check (option bool)) name expected (Lint.Suppress.parse_line line rule)
  in
  check "justified" (Some true)
    "  (* robustlint: allow R1 — exact sentinel *)" Lint.Finding.R1;
  check "ascii justification" (Some true)
    "(* robustlint: allow R5 boundary check documented in the mli *)" Lint.Finding.R5;
  check "bare allow is unjustified" (Some false) "(* robustlint: allow R1 *)" Lint.Finding.R1;
  check "wrong rule does not match" None "(* robustlint: allow R2 — reason *)"
    Lint.Finding.R1;
  check "ordinary code" None "let x = 1 + 2" Lint.Finding.R1

let test_rule_ids_roundtrip () =
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Lint.Finding.rule_id r ^ " roundtrips")
        true
        (Lint.Finding.rule_of_id (Lint.Finding.rule_id r) = Some r))
    Lint.Finding.all_rules;
  Alcotest.(check bool) "unknown id rejected" true (Lint.Finding.rule_of_id "R12" = None)

let test_missing_dir_yields_no_units () =
  let r = Lint.Driver.run ~source_root:".." [ "no-such-dir" ] in
  Alcotest.(check int) "no units" 0 r.Lint.Driver.units;
  Alcotest.(check int) "no findings" 0 (List.length r.Lint.Driver.findings)

(* {1 Machine-readable output} *)

let test_findings_sorted () =
  let fs = (Lazy.force report).Lint.Driver.findings in
  Alcotest.(check bool) "sorted by (file, line, col)" true
    (List.sort Lint.Finding.compare_by_loc fs = fs)

let test_byte_stable_output () =
  let render () = Format.asprintf "%a" Lint.Driver.print_text (Lazy.force report) in
  Alcotest.(check string) "two renders are byte-identical" (render ()) (render ());
  let sarif () = Lint.Sarif.to_string (Lazy.force report).Lint.Driver.findings in
  Alcotest.(check string) "two SARIF renders are byte-identical" (sarif ()) (sarif ())

let test_fingerprint_ignores_position () =
  let f = List.hd (Lazy.force report).Lint.Driver.findings in
  let moved = { f with Lint.Finding.line = f.Lint.Finding.line + 41; col = 0 } in
  Alcotest.(check string) "code motion keeps the fingerprint"
    (Lint.Finding.fingerprint f)
    (Lint.Finding.fingerprint moved)

let test_baseline_roundtrip () =
  let fs = (Lazy.force report).Lint.Driver.findings in
  let path = Filename.temp_file "robustlint" ".baseline" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Lint.Baseline.save path fs;
      let baseline = Lint.Baseline.load path in
      Alcotest.(check int) "full baseline absorbs everything" 0
        (List.length (Lint.Baseline.filter ~baseline fs));
      (* dropping one entry lets exactly the matching finding through;
         multiset semantics, so duplicates are absorbed one-for-one. *)
      let short = List.tl baseline in
      let escaped = Lint.Baseline.filter ~baseline:short fs in
      Alcotest.(check int) "one escapes a shortened baseline" 1 (List.length escaped);
      Alcotest.(check string) "and it is the dropped fingerprint"
        (List.hd baseline)
        (Lint.Finding.fingerprint (List.hd escaped)))

let test_baseline_missing_file () =
  Alcotest.check_raises "load on a missing path raises"
    (Invalid_argument "baseline file no-such.baseline does not exist") (fun () ->
      ignore (Lint.Baseline.load "no-such.baseline"))

(* {1 SARIF schema} *)

let rec validate ~path schema j =
  let open Obs.Json in
  match member "const" schema with
  | Some c -> if j = c then [] else [ path ^ ": const mismatch" ]
  | None -> (
    match member "type" schema with
    | Some (String "object") -> (
      match j with
      | Obj kvs ->
        let required =
          match member "required" schema with
          | Some (List l) -> List.filter_map (function String s -> Some s | _ -> None) l
          | _ -> []
        in
        let missing =
          List.filter_map
            (fun k ->
              if List.mem_assoc k kvs then None else Some (path ^ ": missing key " ^ k))
            required
        in
        let props = match member "properties" schema with Some (Obj p) -> p | _ -> [] in
        let nested =
          List.concat_map
            (fun (k, sub) ->
              match List.assoc_opt k kvs with
              | Some v -> validate ~path:(path ^ "." ^ k) sub v
              | None -> [])
            props
        in
        missing @ nested
      | _ -> [ path ^ ": not an object" ])
    | Some (String "array") -> (
      match j with
      | List items -> (
        match member "items" schema with
        | Some sub ->
          List.concat
            (List.mapi
               (fun i v -> validate ~path:(Printf.sprintf "%s[%d]" path i) sub v)
               items)
        | None -> [])
      | _ -> [ path ^ ": not an array" ])
    | Some (String "string") -> (
      match j with String _ -> [] | _ -> [ path ^ ": not a string" ])
    | Some (String "integer") -> (
      match j with Int _ -> [] | _ -> [ path ^ ": not an integer" ])
    | _ -> [])

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_sarif_validates () =
  let out = Lint.Sarif.to_string (Lazy.force report).Lint.Driver.findings in
  let doc = Obs.Json.parse out in
  let schema = Obs.Json.parse (read_file "sarif_schema.json") in
  (match validate ~path:"$" schema doc with
  | [] -> ()
  | errs -> Alcotest.failf "SARIF schema violations:\n%s" (String.concat "\n" errs));
  (* one result per finding, in report order *)
  match Obs.Json.(member "runs" doc) with
  | Some (Obs.Json.List [ run ]) -> (
    match Obs.Json.member "results" run with
    | Some (Obs.Json.List results) ->
      Alcotest.(check int) "one result per finding"
        (List.length (Lazy.force report).Lint.Driver.findings)
        (List.length results)
    | _ -> Alcotest.fail "no results array")
  | _ -> Alcotest.fail "expected exactly one run"

(* {1 Stale-suppression audit} *)

let test_stale_scan () =
  let r = Lazy.force report in
  let stale =
    Lint.Stale.scan ~source_root:".." ~dirs:[ "test/lint_fixtures" ]
      ~used:r.Lint.Driver.sup_used
  in
  Alcotest.(check (list (triple string int string)))
    "exactly the two dead allow comments"
    [
      ("test/lint_fixtures/stale_allow.ml", 4, "R1");
      ("test/lint_fixtures/suppress_wrongrule.ml", 3, "R2");
    ]
    stale

let test_rule_on_line () =
  Alcotest.(check (option string)) "plain allow" (Some "R1")
    (Lint.Stale.rule_on_line "(* robustlint: allow R1 — reason *)");
  Alcotest.(check (option string)) "double digits" (Some "R11")
    (Lint.Stale.rule_on_line "  (* robustlint: allow R11 — reason *)");
  Alcotest.(check (option string)) "no digit is not a marker" None
    (Lint.Stale.rule_on_line "(* robustlint: allow R<k> — doc example *)");
  Alcotest.(check (option string)) "out-of-range rule rejected" None
    (Lint.Stale.rule_on_line "(* robustlint: allow R12 — no such rule *)");
  Alcotest.(check (option string)) "ordinary code" None (Lint.Stale.rule_on_line "let x = 1")

(* {1 The stub planter} *)

let test_stub_planting_idempotent () =
  let path = Filename.temp_file "robustlint" ".ml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "let f () =\n  assert false\n";
      close_out oc;
      let finding =
        {
          Lint.Finding.rule = Lint.Finding.R5;
          file = Filename.basename path;
          line = 2;
          col = 2;
          message = "assert in library code";
          fix = [];
        }
      in
      let source_root = Filename.dirname path in
      Alcotest.(check (list string)) "stub planted"
        [ Filename.basename path ]
        (Lint.Patch.apply ~source_root [ finding ]);
      let planted = read_file path in
      Alcotest.(check bool) "marker present with copied indent" true
        (contains ~sub:"\n  (* robustlint: allow R5 *)\n  assert false" planted);
      Alcotest.(check (list string)) "second pass plants nothing" []
        (Lint.Patch.apply ~source_root [ finding ]);
      Alcotest.(check string) "file unchanged" planted (read_file path))

let test_r7_fix_recorded () =
  match findings_in "r7_hashtbl_iter.ml" with
  | [ f ] ->
    Alcotest.(check bool) "R7 finding carries span edits" true (f.Lint.Finding.fix <> []);
    let texts =
      String.concat "" (List.map (fun (e : Lint.Finding.edit) -> e.text) f.Lint.Finding.fix)
    in
    Alcotest.(check bool) "rewrite sorts the keys" true
      (contains ~sub:"List.sort_uniq compare" texts);
    Alcotest.(check bool) "generated fold carries a justified suppression" true
      (contains ~sub:"robustlint: allow R7" texts);
    Alcotest.(check bool) "replacements stay newline-free" true
      (List.for_all
         (fun (e : Lint.Finding.edit) -> not (String.contains e.text '\n'))
         f.Lint.Finding.fix)
  | fs -> Alcotest.failf "expected one R7 finding, got %d" (List.length fs)

let test_has_marker () =
  Alcotest.(check bool) "marker line" true
    (Lint.Patch.has_marker "  (* robustlint: allow R1 — x *)");
  Alcotest.(check bool) "plain line" false (Lint.Patch.has_marker "let x = compare")

let () =
  Alcotest.run "lint"
    [
      ( "fixtures",
        [
          Alcotest.test_case "every rule fires once" `Quick test_every_rule_fires;
          Alcotest.test_case "R11 wall clock" `Quick test_r11_wall_clock;
          Alcotest.test_case "no extra findings" `Quick test_no_extra_findings;
          Alcotest.test_case "units counted" `Quick test_units_counted;
          Alcotest.test_case "missing dir yields no units" `Quick
            test_missing_dir_yields_no_units;
        ] );
      ( "interproc",
        [
          Alcotest.test_case "R1 through a generic helper" `Quick test_interproc_r1;
          Alcotest.test_case "R2 taint flow" `Quick test_taint_flow;
        ] );
      ( "locks",
        [
          Alcotest.test_case "off-lock field read" `Quick test_r10_off_lock_read;
          Alcotest.test_case "double lock and guarded global" `Quick
            test_r10_double_and_global;
          Alcotest.test_case "lock-order cycle" `Quick test_r10_order_cycle;
        ] );
      ( "suppress",
        [
          Alcotest.test_case "justified suppression silences" `Quick
            test_justified_suppression_silences;
          Alcotest.test_case "unjustified suppression reports" `Quick
            test_unjustified_suppression_reports;
          Alcotest.test_case "wrong rule does not mask" `Quick test_wrong_rule_does_not_mask;
          Alcotest.test_case "nested module scoping" `Quick test_nested_module_scoping;
          Alcotest.test_case "comment parsing" `Quick test_parse_line;
          Alcotest.test_case "rule ids roundtrip" `Quick test_rule_ids_roundtrip;
        ] );
      ( "output",
        [
          Alcotest.test_case "findings sorted" `Quick test_findings_sorted;
          Alcotest.test_case "byte-stable output" `Quick test_byte_stable_output;
          Alcotest.test_case "fingerprint ignores position" `Quick
            test_fingerprint_ignores_position;
          Alcotest.test_case "baseline roundtrip" `Quick test_baseline_roundtrip;
          Alcotest.test_case "baseline missing file" `Quick test_baseline_missing_file;
          Alcotest.test_case "SARIF validates" `Quick test_sarif_validates;
        ] );
      ( "stale",
        [
          Alcotest.test_case "stale scan" `Quick test_stale_scan;
          Alcotest.test_case "rule_on_line" `Quick test_rule_on_line;
        ] );
      ( "fix",
        [
          Alcotest.test_case "stub planting idempotent" `Quick test_stub_planting_idempotent;
          Alcotest.test_case "R7 fix recorded" `Quick test_r7_fix_recorded;
          Alcotest.test_case "has_marker" `Quick test_has_marker;
        ] );
    ]
