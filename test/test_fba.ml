(* Tests for the sparse stoichiometry, FBA toolbox and the synthetic
   Geobacter model. *)

let check_float ?(tol = 1e-7) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

(* {1 Sparse} *)

let test_sparse_set_get () =
  let m = Fba.Sparse.create ~rows:3 ~cols:3 in
  Fba.Sparse.set m 0 1 2.5;
  check_float "set/get" 2.5 (Fba.Sparse.get m 0 1);
  check_float "default zero" 0. (Fba.Sparse.get m 2 2);
  Fba.Sparse.set m 0 1 0.;
  Alcotest.(check int) "zero removes" 0 (Fba.Sparse.nnz m)

let test_sparse_mv () =
  let m = Fba.Sparse.create ~rows:2 ~cols:3 in
  Fba.Sparse.set m 0 0 1.;
  Fba.Sparse.set m 0 2 2.;
  Fba.Sparse.set m 1 1 (-1.);
  let y = Fba.Sparse.mv m [| 1.; 2.; 3. |] in
  Alcotest.(check bool) "mv" true (Numerics.Vec.approx_equal y [| 7.; -2. |])

let test_sparse_tmv_matches_dense () =
  let rng = Numerics.Rng.create 31 in
  let m = Fba.Sparse.create ~rows:6 ~cols:9 in
  for _ = 1 to 20 do
    Fba.Sparse.set m (Numerics.Rng.int rng 6) (Numerics.Rng.int rng 9)
      (Numerics.Rng.uniform rng (-2.) 2.)
  done;
  let x = Array.init 6 (fun _ -> Numerics.Rng.uniform rng (-1.) 1.) in
  let dense = Fba.Sparse.to_dense m in
  Alcotest.(check bool) "tmv = dense tmv" true
    (Numerics.Vec.approx_equal ~tol:1e-10 (Fba.Sparse.tmv m x) (Numerics.Matrix.tmv dense x))

let test_sparse_column () =
  let m = Fba.Sparse.create ~rows:4 ~cols:2 in
  Fba.Sparse.set m 3 0 1.;
  Fba.Sparse.set m 1 0 (-1.);
  (match Fba.Sparse.column m 0 with
   | [ (1, a); (3, b) ] ->
     check_float "sorted col a" (-1.) a;
     check_float "sorted col b" 1. b
   | _ -> Alcotest.fail "column structure");
  Alcotest.(check (list (pair int (float 0.)))) "empty col" [] (Fba.Sparse.column m 1)

let test_sparse_residual () =
  let m = Fba.Sparse.create ~rows:2 ~cols:2 in
  Fba.Sparse.set m 0 0 1.;
  Fba.Sparse.set m 1 1 1.;
  check_float "norm" 5. (Fba.Sparse.residual_norm2 m [| 3.; 4. |])

(* {1 Network} *)

let toy_network () =
  (* A → B → ∅ with an uptake bound of 10. *)
  let net = Fba.Network.create ~metabolites:[| "A"; "B" |] () in
  let ex_a = Fba.Network.add_reaction net ~name:"EX_A" ~stoich:[ (0, 1.) ] ~lb:0. ~ub:10. in
  let conv = Fba.Network.add_reaction net ~name:"A2B" ~stoich:[ (0, -1.); (1, 1.) ] ~lb:0. ~ub:100. in
  let ex_b = Fba.Network.add_reaction net ~name:"EX_B" ~stoich:[ (1, -1.) ] ~lb:0. ~ub:100. in
  (net, ex_a, conv, ex_b)

let test_network_build () =
  let net, _, _, _ = toy_network () in
  Alcotest.(check int) "metabolites" 2 (Fba.Network.n_metabolites net);
  Alcotest.(check int) "reactions" 3 (Fba.Network.n_reactions net);
  Alcotest.(check int) "lookup" 1 (Fba.Network.reaction_index net "A2B")

let test_network_violation () =
  let net, _, _, _ = toy_network () in
  check_float "balanced" 0. (Fba.Network.violation net [| 5.; 5.; 5. |]);
  Alcotest.(check bool) "unbalanced" true (Fba.Network.violation net [| 5.; 0.; 0. |] > 0.)

let test_network_set_bounds () =
  let net, ex_a, _, _ = toy_network () in
  Fba.Network.set_bounds net ex_a 0. 3.;
  let lb, ub = (Fba.Network.bounds net).(ex_a) in
  check_float "lb" 0. lb;
  check_float "ub" 3. ub

let test_network_duplicate_name_rejected () =
  let net, _, _, _ = toy_network () in
  Alcotest.(check bool) "duplicate raises" true
    (try
       ignore (Fba.Network.add_reaction net ~name:"A2B" ~stoich:[] ~lb:0. ~ub:1.);
       false
     with Invalid_argument _ -> true)

(* {1 FBA} *)

let test_fba_toy_chain () =
  let net, _, _, ex_b = toy_network () in
  let sol = Fba.Analysis.fba ~t:net ~objective:ex_b in
  check_float ~tol:1e-6 "throughput = uptake bound" 10. sol.Fba.Analysis.objective;
  check_float ~tol:1e-6 "steady" 0. (Fba.Network.violation net sol.Fba.Analysis.fluxes)

let test_fba_branch_chooses_better () =
  (* A can go to B (worth 1) or C (worth 0): maximize EX_B. *)
  let net = Fba.Network.create ~metabolites:[| "A"; "B"; "C" |] () in
  let _ = Fba.Network.add_reaction net ~name:"EX_A" ~stoich:[ (0, 1.) ] ~lb:0. ~ub:4. in
  let _ = Fba.Network.add_reaction net ~name:"A2B" ~stoich:[ (0, -1.); (1, 1.) ] ~lb:0. ~ub:100. in
  let _ = Fba.Network.add_reaction net ~name:"A2C" ~stoich:[ (0, -1.); (2, 1.) ] ~lb:0. ~ub:100. in
  let ex_b = Fba.Network.add_reaction net ~name:"EX_B" ~stoich:[ (1, -1.) ] ~lb:0. ~ub:100. in
  let _ = Fba.Network.add_reaction net ~name:"EX_C" ~stoich:[ (2, -1.) ] ~lb:0. ~ub:100. in
  let sol = Fba.Analysis.fba ~t:net ~objective:ex_b in
  check_float ~tol:1e-6 "all carbon to B" 4. sol.Fba.Analysis.objective

let test_fva_toy () =
  let net, ex_a, conv, _ = toy_network () in
  (* Force some throughput so the chain is active: EX_B >= 2. *)
  Fba.Network.set_bounds net 2 2. 100.;
  (match Fba.Analysis.fva ~t:net ~reactions:[ ex_a; conv ] with
   | [ (_, (lo_a, hi_a)); (_, (lo_c, hi_c)) ] ->
     check_float ~tol:1e-6 "uptake min" 2. lo_a;
     check_float ~tol:1e-6 "uptake max" 10. hi_a;
     check_float ~tol:1e-6 "conv min" 2. lo_c;
     check_float ~tol:1e-6 "conv max" 10. hi_c
   | _ -> Alcotest.fail "fva shape")

let test_fba_infeasible_detected () =
  let net = Fba.Network.create ~metabolites:[| "A" |] () in
  (* A is produced at >= 1 but nothing consumes it: no steady state. *)
  let r = Fba.Network.add_reaction net ~name:"SRC" ~stoich:[ (0, 1.) ] ~lb:1. ~ub:2. in
  Alcotest.(check bool) "raises" true
    (try
       ignore (Fba.Analysis.fba ~t:net ~objective:r);
       false
     with Fba.Analysis.Infeasible_model _ -> true)

(* {1 Geobacter model} *)

let model = lazy (Fba.Geobacter.build ())

let test_geobacter_scale () =
  let g = Lazy.force model in
  Alcotest.(check int) "608 reactions" 608 (Fba.Network.n_reactions g.Fba.Geobacter.net);
  Alcotest.(check bool) "hundreds of metabolites" true
    (Fba.Network.n_metabolites g.Fba.Geobacter.net > 300)

let test_geobacter_atpm_fixed () =
  let g = Lazy.force model in
  let lb, ub = (Fba.Network.bounds g.Fba.Geobacter.net).(g.Fba.Geobacter.atpm) in
  check_float "lb 0.45" 0.45 lb;
  check_float "ub 0.45" 0.45 ub

let test_geobacter_deterministic () =
  let a = Fba.Geobacter.build () in
  let b = Fba.Geobacter.build () in
  Alcotest.(check int) "same size" (Fba.Network.n_reactions a.Fba.Geobacter.net)
    (Fba.Network.n_reactions b.Fba.Geobacter.net);
  let ra = Fba.Network.reaction a.Fba.Geobacter.net 300 in
  let rb = Fba.Network.reaction b.Fba.Geobacter.net 300 in
  Alcotest.(check string) "same decoys" ra.Fba.Network.name rb.Fba.Network.name

let test_geobacter_ep_window () =
  let g = Lazy.force model in
  let sol = Fba.Analysis.fba ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.ep in
  (* The paper's Figure 4 window: EP between ~158 and ~162. *)
  Alcotest.(check bool)
    (Printf.sprintf "max EP %.2f in window" sol.Fba.Analysis.objective)
    true
    (sol.Fba.Analysis.objective > 155. && sol.Fba.Analysis.objective < 165.)

let test_geobacter_bp_window () =
  let g = Lazy.force model in
  let sol = Fba.Analysis.fba ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.bp in
  check_float ~tol:1e-3 "max BP = nh4 cap" 0.301 sol.Fba.Analysis.objective

let test_geobacter_tradeoff_slope () =
  let g = Lazy.force model in
  let sweep =
    Fba.Analysis.epsilon_constraint ~t:g.Fba.Geobacter.net ~primary:g.Fba.Geobacter.ep
      ~secondary:g.Fba.Geobacter.bp ~levels:[ 0.283; 0.300 ]
  in
  match sweep with
  | [ (ep_lo_bp, _); (ep_hi_bp, _) ] ->
    Alcotest.(check bool) "EP falls as BP rises" true (ep_lo_bp > ep_hi_bp);
    let slope = (ep_lo_bp -. ep_hi_bp) /. (0.300 -. 0.283) in
    (* Paper's A–E points imply ~160 electrons per biomass unit. *)
    Alcotest.(check bool) (Printf.sprintf "slope %.0f in [100, 250]" slope) true
      (slope > 100. && slope < 250.)
  | _ -> Alcotest.fail "sweep failed"

(* {1 Geobacter MOO wrapper} *)

let test_problem_dimensions () =
  let g = Lazy.force model in
  let p = Fba.Moo_problem.problem g in
  Alcotest.(check int) "608 vars" 608 p.Moo.Problem.n_var;
  Alcotest.(check int) "2 objectives" 2 p.Moo.Problem.n_obj

let test_seeds_feasible_and_ordered () =
  let g = Lazy.force model in
  let seeds = Fba.Moo_problem.seeds g ~levels:[ 0.283; 0.301 ] in
  Alcotest.(check int) "two seeds" 2 (List.length seeds);
  List.iter
    (fun s ->
      Alcotest.(check bool) "feasible" true (s.Moo.Solution.v <= 1e-9);
      Alcotest.(check bool) "EP in window" true
        (Fba.Moo_problem.ep_of s > 155. && Fba.Moo_problem.ep_of s < 165.))
    seeds

let test_repair_reduces_violation () =
  let g = Lazy.force model in
  let rng = Numerics.Rng.create 41 in
  let p = Fba.Moo_problem.problem g in
  let raw = Moo.Problem.random_solution p rng in
  let before = Fba.Network.violation g.Fba.Geobacter.net raw in
  let after = Fba.Network.violation g.Fba.Geobacter.net (Fba.Moo_problem.repair g raw) in
  Alcotest.(check bool)
    (Printf.sprintf "repair %.3g -> %.3g" before after)
    true (after < before /. 10.)

let test_flux_variation_keeps_near_feasible () =
  let g = Lazy.force model in
  let seeds = Fba.Moo_problem.seeds g ~levels:[ 0.283; 0.301 ] in
  match seeds with
  | [ a; b ] ->
    let vary = Fba.Moo_problem.flux_variation g () in
    let rng = Numerics.Rng.create 42 in
    for _ = 1 to 20 do
      let c1, c2 = vary rng a.Moo.Solution.x b.Moo.Solution.x in
      let v1 = Fba.Network.violation g.Fba.Geobacter.net c1 in
      let v2 = Fba.Network.violation g.Fba.Geobacter.net c2 in
      if v1 > 0.5 || v2 > 0.5 then Alcotest.failf "child violation too big: %g %g" v1 v2
    done
  | _ -> Alcotest.fail "seeds missing"

let test_initial_guess_violation_large () =
  let g = Lazy.force model in
  Alcotest.(check bool) "initial guess far from steady state" true
    (Fba.Moo_problem.initial_guess_violation g ~seed:1 > 1e3)

let () =
  Alcotest.run "fba"
    [
      ( "sparse",
        [
          Alcotest.test_case "set/get" `Quick test_sparse_set_get;
          Alcotest.test_case "mv" `Quick test_sparse_mv;
          Alcotest.test_case "tmv vs dense" `Quick test_sparse_tmv_matches_dense;
          Alcotest.test_case "column" `Quick test_sparse_column;
          Alcotest.test_case "residual norm" `Quick test_sparse_residual;
        ] );
      ( "network",
        [
          Alcotest.test_case "build" `Quick test_network_build;
          Alcotest.test_case "violation" `Quick test_network_violation;
          Alcotest.test_case "set bounds" `Quick test_network_set_bounds;
          Alcotest.test_case "duplicate name" `Quick test_network_duplicate_name_rejected;
        ] );
      ( "analysis",
        [
          Alcotest.test_case "toy chain fba" `Quick test_fba_toy_chain;
          Alcotest.test_case "branch selection" `Quick test_fba_branch_chooses_better;
          Alcotest.test_case "fva" `Quick test_fva_toy;
          Alcotest.test_case "infeasible detected" `Quick test_fba_infeasible_detected;
        ] );
      ( "geobacter",
        [
          Alcotest.test_case "scale" `Quick test_geobacter_scale;
          Alcotest.test_case "atpm fixed at 0.45" `Quick test_geobacter_atpm_fixed;
          Alcotest.test_case "deterministic" `Quick test_geobacter_deterministic;
          Alcotest.test_case "max EP window" `Slow test_geobacter_ep_window;
          Alcotest.test_case "max BP window" `Slow test_geobacter_bp_window;
          Alcotest.test_case "trade-off slope" `Slow test_geobacter_tradeoff_slope;
        ] );
      ( "moo-wrapper",
        [
          Alcotest.test_case "dimensions" `Quick test_problem_dimensions;
          Alcotest.test_case "fba seeds" `Slow test_seeds_feasible_and_ordered;
          Alcotest.test_case "repair reduces violation" `Quick test_repair_reduces_violation;
          Alcotest.test_case "variation near-feasible" `Slow test_flux_variation_keeps_near_feasible;
          Alcotest.test_case "initial guess violation" `Quick test_initial_guess_violation_large;
        ] );
    ]
