(* Tests for the evaluation cache + warm-start layer: canonical genotype
   hashing, the LRU memo, deduplicated batch evaluation, cache-enabled
   archipelagos (bit-identical fronts at any domain count, resumable),
   simplex basis round-trips, ODE warm starts and cooperative
   deadlines. *)

(* {1 Fnv} *)

let test_fnv_hash_and_equal () =
  let a = [| 1.0; -0.5; 3.25 |] in
  let b = [| 1.0; -0.5; 3.25 |] in
  Alcotest.(check bool) "equal vectors" true (Cache.Fnv.equal a b);
  Alcotest.(check bool) "equal hashes" true (Int64.equal (Cache.Fnv.hash a) (Cache.Fnv.hash b));
  let c = [| 1.0; -0.5; 3.250000001 |] in
  Alcotest.(check bool) "unequal vectors" false (Cache.Fnv.equal a c);
  (* +0. and -0. are numerically equal but different bit patterns: the
     cache must treat them as different keys (bit-exact contract). *)
  Alcotest.(check bool) "signed zeros differ" false (Cache.Fnv.equal [| 0. |] [| -0. |]);
  (* NaN equals itself bitwise, so a NaN genotype cannot poison lookup. *)
  Alcotest.(check bool) "nan self-equal" true (Cache.Fnv.equal [| Float.nan |] [| Float.nan |]);
  Alcotest.(check bool) "length mismatch" false (Cache.Fnv.equal [| 1. |] [| 1.; 2. |])

let test_fnv_quantized () =
  let h = Cache.Fnv.hash_quantized ~grid:0.25 in
  Alcotest.(check bool) "same cell" true (Int64.equal (h [| 1.0; 2.0 |]) (h [| 1.05; 1.95 |]));
  Alcotest.(check bool) "different cell" false
    (Int64.equal (h [| 1.0; 2.0 |]) (h [| 1.4; 2.0 |]));
  Alcotest.check_raises "grid must be positive"
    (Invalid_argument "Cache.Fnv.hash_quantized: grid must be > 0") (fun () ->
      ignore (Cache.Fnv.hash_quantized ~grid:0. [| 1. |]))

(* {1 Memo} *)

let test_memo_lru_eviction () =
  let m : int Cache.Memo.t = Cache.Memo.create ~capacity:2 in
  let k1 = [| 1. |] and k2 = [| 2. |] and k3 = [| 3. |] in
  Cache.Memo.add m k1 1;
  Cache.Memo.add m k2 2;
  (* Touch k1 so k2 becomes the least recently used... *)
  Alcotest.(check (option int)) "hit k1" (Some 1) (Cache.Memo.find m k1);
  (* ...then overflow: k2 must be the victim, deterministically. *)
  Cache.Memo.add m k3 3;
  Alcotest.(check bool) "k1 survives" true (Cache.Memo.mem m k1);
  Alcotest.(check bool) "k2 evicted" false (Cache.Memo.mem m k2);
  Alcotest.(check bool) "k3 present" true (Cache.Memo.mem m k3);
  let s = Cache.Memo.stats m in
  Alcotest.(check int) "one eviction" 1 s.Cache.Memo.evictions;
  Alcotest.(check int) "size" 2 s.Cache.Memo.size;
  Cache.Memo.clear m;
  Alcotest.(check int) "cleared" 0 (Cache.Memo.stats m).Cache.Memo.size;
  Alcotest.(check int) "counters survive clear" 1 (Cache.Memo.stats m).Cache.Memo.evictions

let test_memo_replace_refreshes () =
  let m : int Cache.Memo.t = Cache.Memo.create ~capacity:2 in
  Cache.Memo.add m [| 1. |] 1;
  Cache.Memo.add m [| 2. |] 2;
  (* Re-adding key 1 refreshes it without evicting anyone. *)
  Cache.Memo.add m [| 1. |] 10;
  Alcotest.(check int) "no eviction" 0 (Cache.Memo.stats m).Cache.Memo.evictions;
  Alcotest.(check (option int)) "value replaced" (Some 10) (Cache.Memo.find m [| 1. |]);
  Cache.Memo.add m [| 3. |] 3;
  Alcotest.(check bool) "2 was LRU after refresh" false (Cache.Memo.mem m [| 2. |])

(* {1 Batch} *)

let test_batch_dedups_within_batch () =
  let keys = [| [| 1. |]; [| 2. |]; [| 1. |]; [| 3. |]; [| 2. |]; [| 1. |] |] in
  let calls = ref 0 in
  let out =
    Cache.Batch.evaluate ~n:6
      ~key:(fun i -> keys.(i))
      (fun i ->
        incr calls;
        keys.(i).(0) *. 10.)
  in
  Alcotest.(check int) "three distinct keys, three calls" 3 !calls;
  Alcotest.(check (array (float 0.))) "all slots filled"
    [| 10.; 20.; 10.; 30.; 20.; 10. |] out

let test_batch_memo_across_batches () =
  let memo : float Cache.Memo.t = Cache.Memo.create ~capacity:8 in
  let keys = [| [| 1. |]; [| 2. |] |] in
  let calls = ref 0 in
  let eval i =
    incr calls;
    keys.(i).(0) +. 0.5
  in
  let r1 = Cache.Batch.evaluate ~memo ~n:2 ~key:(fun i -> keys.(i)) eval in
  Alcotest.(check int) "cold batch evaluates" 2 !calls;
  let r2 = Cache.Batch.evaluate ~memo ~n:2 ~key:(fun i -> keys.(i)) eval in
  Alcotest.(check int) "warm batch replays" 2 !calls;
  Alcotest.(check (array (float 0.))) "identical results" r1 r2;
  Alcotest.(check int) "two memo hits" 2 (Cache.Memo.stats memo).Cache.Memo.hits

(* {1 Warm store} *)

let test_warm_store_nearest () =
  let w : int Cache.Warm.t = Cache.Warm.create ~grid:0.25 ~capacity:4 () in
  Alcotest.(check (option int)) "empty store misses" None (Cache.Warm.nearest w [| 1.0 |]);
  Cache.Warm.store w [| 1.0 |] 10;
  Cache.Warm.store w [| 1.05 |] 11;
  (* Both live in the same lattice cell; 1.04 is closer to 1.05. *)
  Alcotest.(check (option int)) "nearest in cell" (Some 11) (Cache.Warm.nearest w [| 1.04 |]);
  (* A query snapping to a different cell misses even if numerically close. *)
  Alcotest.(check (option int)) "other cell misses" None (Cache.Warm.nearest w [| 1.4 |]);
  Cache.Warm.store w [| 1.0 |] 20;
  Alcotest.(check (option int)) "in-place replace" (Some 20) (Cache.Warm.nearest w [| 0.99 |]);
  let s = Cache.Warm.stats w in
  Alcotest.(check int) "live entries" 2 s.Cache.Warm.size

(* {1 EA + archipelago determinism with the cache} *)

let arch_config ~pool ~cache_size =
  {
    Pmo2.Archipelago.default_config with
    migration_period = 10;
    nsga2 = { Ea.Nsga2.default_config with pop_size = 16; pool };
    parallel = Option.is_some pool;
    cache_size;
  }

let objs r =
  List.sort compare
    (List.map (fun s -> Array.to_list s.Moo.Solution.f) r.Pmo2.Archipelago.front)

let test_cache_fronts_bit_identical () =
  let problem = Moo.Benchmarks.zdt1 ~n:6 in
  let reference =
    Pmo2.Archipelago.run ~seed:33 ~generations:30 problem
      (arch_config ~pool:None ~cache_size:None)
  in
  (* The cached run must reproduce the uncached front bit for bit, at
     any domain count: hits replay values computed from bit-identical
     genotypes and all memo traffic is sequential. *)
  List.iter
    (fun domains ->
      Parallel.Pool.set_default_domains domains;
      let pool = if domains = 1 then None else Some (Parallel.Pool.get ()) in
      let cached =
        Pmo2.Archipelago.run ~seed:33 ~generations:30 problem
          (arch_config ~pool ~cache_size:(Some 512))
      in
      Alcotest.(check bool)
        (Printf.sprintf "front identical at %d domains" domains)
        true
        (objs reference = objs cached);
      Alcotest.(check int)
        (Printf.sprintf "requested evaluations identical at %d domains" domains)
        reference.Pmo2.Archipelago.evaluations cached.Pmo2.Archipelago.evaluations;
      Alcotest.(check int) "per-island cache telemetry present" 2
        (Array.length cached.Pmo2.Archipelago.cache_stats))
    [ 1; 2; 4 ];
  Parallel.Pool.set_default_domains 1

let with_temp_file f =
  let path = Filename.temp_file "robustpath" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_kill_and_resume_with_cache () =
  (* The memo is never checkpointed; a resumed run restarts it cold and
     must still match the uninterrupted cached run bit for bit. *)
  let problem = Moo.Benchmarks.zdt1 ~n:8 in
  let cfg = arch_config ~pool:None ~cache_size:(Some 256) in
  let full = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem cfg in
  with_temp_file (fun path ->
      let _half = Pmo2.Archipelago.run ~seed:21 ~checkpoint:path ~generations:20 problem cfg in
      let resumed = Pmo2.Archipelago.run ~seed:21 ~resume:path ~generations:40 problem cfg in
      Alcotest.(check bool) "identical fronts" true (objs full = objs resumed);
      Alcotest.(check int) "identical evaluation counts" full.Pmo2.Archipelago.evaluations
        resumed.Pmo2.Archipelago.evaluations)

let test_cache_size_validation () =
  Alcotest.check_raises "cache_size 0 rejected"
    (Invalid_argument "Archipelago.init: cache_size must be >= 1") (fun () ->
      ignore
        (Pmo2.Archipelago.init (Moo.Benchmarks.zdt1 ~n:4)
           (arch_config ~pool:None ~cache_size:(Some 0))))

(* {1 Simplex warm starts} *)

(* max 2x + y  s.t.  x + y = 1, x,y >= 0: optimum (1,0), objective 2. *)
let tiny_lp rhs =
  {
    Lp.Simplex.n_rows = 1;
    cols = [| [ (0, 1.) ]; [ (0, 1.) ] |];
    rhs = [| rhs |];
    obj = [| 2.; 1. |];
    lo = [| 0.; 0. |];
    up = [| infinity; infinity |];
  }

let check_optimal what expected = function
  | Lp.Simplex.Optimal { objective; _ } ->
    Alcotest.(check (float 1e-9)) what expected objective
  | _ -> Alcotest.failf "%s: expected Optimal" what

let test_simplex_basis_round_trip () =
  let outcome, basis = Lp.Simplex.solve_basis (tiny_lp 1.) in
  check_optimal "cold solve" 2. outcome;
  let basis = Option.get basis in
  Obs.Metrics.set_enabled true;
  let warm_c = Obs.Metrics.counter "simplex.warm_starts" in
  let before = Obs.Metrics.counter_value warm_c in
  (* Same LP, warm start: identical outcome. *)
  check_optimal "warm re-solve" 2. (Lp.Simplex.solve ~basis (tiny_lp 1.));
  (* Perturbed rhs: the parent basis is still a feasible vertex; the
     warm solve lands on the scaled optimum. *)
  check_optimal "warm neighbor solve" 4. (Lp.Simplex.solve ~basis (tiny_lp 2.));
  let after = Obs.Metrics.counter_value warm_c in
  Obs.Metrics.set_enabled false;
  Alcotest.(check int) "both solves warm-started" 2 (after - before)

let test_simplex_bad_basis_falls_back () =
  (* A basis of the wrong shape is rejected, and the solver silently
     falls back to the cold path with the same answer. *)
  let _, basis = Lp.Simplex.solve_basis (tiny_lp 1.) in
  let basis = Option.get basis in
  let bigger =
    {
      Lp.Simplex.n_rows = 1;
      cols = [| [ (0, 1.) ]; [ (0, 1.) ]; [ (0, 1.) ] |];
      rhs = [| 1. |];
      obj = [| 2.; 1.; 0. |];
      lo = [| 0.; 0.; 0. |];
      up = [| infinity; infinity; infinity |];
    }
  in
  check_optimal "fallback solve" 2. (Lp.Simplex.solve ~basis bigger)

let test_fba_with_basis_matches_cold () =
  let g = Fba.Geobacter.build () in
  let cold = Fba.Analysis.fba ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.ep in
  let sol1, basis = Fba.Analysis.fba_with_basis ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.ep () in
  Alcotest.(check (float 1e-9)) "basis variant = cold" cold.Fba.Analysis.objective
    sol1.Fba.Analysis.objective;
  match basis with
  | None -> Alcotest.fail "expected a transferable basis"
  | Some basis ->
    let sol2, _ =
      Fba.Analysis.fba_with_basis ~basis ~t:g.Fba.Geobacter.net ~objective:g.Fba.Geobacter.ep ()
    in
    Alcotest.(check (float 1e-9)) "warm = cold" cold.Fba.Analysis.objective
      sol2.Fba.Analysis.objective

(* {1 ODE warm starts and deadlines} *)

(* y' = -(y - 1): relaxes to the fixed point 1 from anywhere. *)
let relax_f _t y = [| 1. -. y.(0) |]

let test_steady_state_warm_matches_cold () =
  let cold =
    match Numerics.Ode.steady_state ~f:relax_f ~y0:[| 0. |] () with
    | Ok y -> y
    | Error _ -> Alcotest.fail "cold relaxation failed"
  in
  Alcotest.(check (float 1e-5)) "cold finds fixed point" 1. cold.(0);
  let warm =
    match
      Numerics.Ode.steady_state ~init:[| 0.9999 |] ~h0:0.5 ~f:relax_f ~y0:[| 0. |] ()
    with
    | Ok y -> y
    | Error _ -> Alcotest.fail "warm relaxation failed"
  in
  Alcotest.(check (float 1e-5)) "warm finds the same fixed point" cold.(0) warm.(0);
  Alcotest.check_raises "init length checked"
    (Invalid_argument "Ode.steady_state: init must match y0 length") (fun () ->
      ignore (Numerics.Ode.steady_state ~init:[| 1.; 2. |] ~f:relax_f ~y0:[| 0. |] ()))

let test_warm_fallback_recovers_from_bad_seed () =
  (* A wildly wrong warm seed must not change the answer: the relaxation
     either converges from it or silently reruns cold. *)
  match
    Numerics.Ode.steady_state ~init:[| 1e6 |] ~f:relax_f ~y0:[| 0. |] ()
  with
  | Ok y -> Alcotest.(check (float 1e-4)) "fixed point despite bad seed" 1. y.(0)
  | Error _ -> Alcotest.fail "bad warm seed broke the relaxation"

let test_deadline_raises_and_guard_absorbs () =
  let expired = Obs.Clock.now_ns () - 1 in
  (* The deadline propagates through the whole fallback chain... *)
  (match
     Numerics.Ode.integrate_fallback ~deadline:expired ~f:relax_f ~t0:0. ~t1:10.
       ~y0:[| 0. |] ()
   with
  | _ -> Alcotest.fail "expired deadline did not abort"
  | exception Numerics.Ode.Deadline _ -> ());
  (match Numerics.Ode.steady_state ~deadline:expired ~f:relax_f ~y0:[| 0. |] () with
  | _ -> Alcotest.fail "expired deadline did not abort steady_state"
  | exception Numerics.Ode.Deadline _ -> ());
  (* ...and a guard turns it into a finite penalty, the watchdog story. *)
  let guard = Runtime.Guard.create ~penalty:1e9 () in
  let out =
    Runtime.Guard.wrap guard ~n_obj:1
      (fun y0 ->
        match Numerics.Ode.steady_state ~deadline:expired ~f:relax_f ~y0 () with
        | Ok y | Error y -> y)
      [| 0. |]
  in
  Alcotest.(check (float 0.)) "penalized" 1e9 out.(0);
  Alcotest.(check int) "guard counted the abort" 1 (Runtime.Guard.stats guard).Runtime.Guard.exceptions;
  (* A generous deadline changes nothing. *)
  let generous = Obs.Clock.now_ns () + 60_000_000_000 in
  match Numerics.Ode.steady_state ~deadline:generous ~f:relax_f ~y0:[| 0. |] () with
  | Ok y -> Alcotest.(check (float 1e-5)) "generous deadline converges" 1. y.(0)
  | Error _ -> Alcotest.fail "generous deadline should not fail"

let test_implicit_euler_frozen_jacobian () =
  (* Fast linear decay: the frozen-LU Newton must still hit the same
     accuracy contract as before on a genuinely stiff-ish problem. *)
  let f _t y = [| -50. *. y.(0) |] in
  let r = Numerics.Ode.implicit_euler ~f ~t0:0. ~t1:0.2 ~y0:[| 1. |] () in
  Alcotest.(check (float 1e-3)) "decay endpoint" (exp (-10.)) r.Numerics.Ode.y.(0);
  Alcotest.(check bool) "h_last recorded" true (r.Numerics.Ode.h_last > 0.)

(* {1 Photo warm evaluation} *)

let test_photo_cached_warm_hits () =
  let env = Photo.Params.present ~tp_export:Photo.Params.low_export in
  let ctx = Photo.Cached.create ~env () in
  let natural = Array.make Photo.Enzyme.count 1. in
  let cold = Photo.Cached.evaluate ctx ~ratios:natural in
  Alcotest.(check bool) "natural leaf converges" true cold.Photo.Steady_state.converged;
  (* A nearby design (one enzyme nudged within the lattice cell) should
     find the stored state and agree with its own cold evaluation. *)
  let nearby = Array.copy natural in
  nearby.(0) <- 1.02;
  let warm = Photo.Cached.evaluate ctx ~ratios:nearby in
  let reference = Photo.Steady_state.evaluate ~env ~ratios:nearby () in
  Alcotest.(check bool) "warm run converges" true warm.Photo.Steady_state.converged;
  (* Warm and cold settle within the steady-state window tolerance of
     each other — qualitatively identical verdicts and fluxes, not
     bit-identical trajectories (which is why the EA memoizes on exact
     genotypes and only the ODE layer uses approximate neighbors). *)
  Alcotest.(check (float 0.05)) "warm uptake ~ cold uptake"
    reference.Photo.Steady_state.uptake warm.Photo.Steady_state.uptake;
  let s = Photo.Cached.stats ctx in
  Alcotest.(check bool) "warm store was consulted" true (s.Cache.Warm.hits >= 1);
  Alcotest.(check bool) "converged states stored" true (s.Cache.Warm.stores >= 2)

let () =
  Alcotest.run "cache"
    [
      ( "fnv",
        [
          Alcotest.test_case "hash and equality" `Quick test_fnv_hash_and_equal;
          Alcotest.test_case "quantized lattice" `Quick test_fnv_quantized;
        ] );
      ( "memo",
        [
          Alcotest.test_case "lru eviction" `Quick test_memo_lru_eviction;
          Alcotest.test_case "replace refreshes" `Quick test_memo_replace_refreshes;
        ] );
      ( "batch",
        [
          Alcotest.test_case "dedups within batch" `Quick test_batch_dedups_within_batch;
          Alcotest.test_case "memo across batches" `Quick test_batch_memo_across_batches;
        ] );
      ("warm-store", [ Alcotest.test_case "nearest neighbor" `Quick test_warm_store_nearest ]);
      ( "archipelago",
        [
          Alcotest.test_case "fronts bit-identical, 1/2/4 domains" `Slow
            test_cache_fronts_bit_identical;
          Alcotest.test_case "kill and resume with cache" `Slow test_kill_and_resume_with_cache;
          Alcotest.test_case "cache_size validation" `Quick test_cache_size_validation;
        ] );
      ( "simplex",
        [
          Alcotest.test_case "basis round trip" `Quick test_simplex_basis_round_trip;
          Alcotest.test_case "bad basis falls back" `Quick test_simplex_bad_basis_falls_back;
          Alcotest.test_case "fba warm = cold" `Quick test_fba_with_basis_matches_cold;
        ] );
      ( "ode",
        [
          Alcotest.test_case "steady_state warm = cold" `Quick test_steady_state_warm_matches_cold;
          Alcotest.test_case "bad warm seed recovers" `Quick test_warm_fallback_recovers_from_bad_seed;
          Alcotest.test_case "deadline + guard" `Quick test_deadline_raises_and_guard_absorbs;
          Alcotest.test_case "frozen-jacobian implicit euler" `Quick
            test_implicit_euler_frozen_jacobian;
        ] );
      ("photo", [ Alcotest.test_case "warm evaluation" `Slow test_photo_cached_warm_hits ]);
    ]
