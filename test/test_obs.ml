(* Tests for the observability layer: the minimal JSON codec, nestable
   spans with Chrome export, and the global metrics registry.

   Span and Metrics are process-global, so every test that enables them
   disables and resets on the way out (Fun.protect) to stay hermetic. *)

let check_float ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* {1 Json} *)

let roundtrip v = Obs.Json.parse (Obs.Json.to_string v)

(* Total lookup: missing members read as [Null]. *)
let mem k j = Option.value ~default:Obs.Json.Null (Obs.Json.member k j)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\tz");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (roundtrip v = v)

let test_json_float_precision () =
  (* %.17g round-trips every float exactly. *)
  let v = 0.1 +. 0.2 in
  match roundtrip (Obs.Json.Float v) with
  | Obs.Json.Float v' -> check_float "exact" v v'
  | _ -> Alcotest.fail "expected float"

let test_json_nonfinite_is_null () =
  (* JSON has no nan/inf; the writer degrades them to null. *)
  Alcotest.(check bool) "nan" true (roundtrip (Obs.Json.Float Float.nan) = Obs.Json.Null);
  Alcotest.(check bool)
    "inf" true
    (roundtrip (Obs.Json.Float Float.infinity) = Obs.Json.Null)

let test_json_parse_basics () =
  Alcotest.(check bool)
    "object" true
    (Obs.Json.parse {| {"a": [1, 2.5, "xA", false, null]} |}
    = Obs.Json.Obj
        [
          ( "a",
            Obs.Json.List
              [
                Obs.Json.Int 1;
                Obs.Json.Float 2.5;
                Obs.Json.String "xA";
                Obs.Json.Bool false;
                Obs.Json.Null;
              ] );
        ])

let test_json_parse_errors () =
  let rejects s =
    match Obs.Json.parse s with
    | exception Obs.Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\": }";
  rejects "tru";
  rejects "1 2";
  (* trailing garbage *)
  rejects "\"unterminated"

let test_json_depth_limit () =
  (* Recursion is capped so corrupt/hostile input raises Parse_error,
     never Stack_overflow. *)
  let deep n = String.concat "" [ String.make n '['; "1"; String.make n ']' ] in
  Alcotest.(check bool) "100 deep parses" true (Obs.Json.parse (deep 100) <> Obs.Json.Null);
  match Obs.Json.parse (deep 513) with
  | exception Obs.Json.Parse_error msg ->
    Alcotest.(check bool) "mentions nesting" true (contains_substring ~sub:"nesting" msg)
  | _ -> Alcotest.fail "accepted 513-deep nesting"

let test_json_rejects_nonfinite_literals () =
  (* JSON has no NaN/Infinity tokens; the parser must not grow them. *)
  let rejects s =
    match Obs.Json.parse s with
    | exception Obs.Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  List.iter rejects [ "NaN"; "nan"; "Infinity"; "-Infinity"; "[1, NaN]"; {| {"a": Infinity} |} ]

let test_json_string_escapes () =
  (* Control characters round-trip through \uXXXX; named escapes and
     UTF-8 \u decoding also hold. *)
  let ctl = String.init 0x20 Char.chr in
  (match roundtrip (Obs.Json.String ctl) with
  | Obs.Json.String s -> Alcotest.(check string) "control chars" ctl s
  | _ -> Alcotest.fail "expected string");
  Alcotest.(check bool) "named escapes decode" true
    (Obs.Json.parse {| "A\n\t\"\\\/" |} = Obs.Json.String "A\n\t\"\\/");
  Alcotest.(check bool) "2-byte utf8 from \\u" true
    (Obs.Json.parse {| "\u00e9" |} = Obs.Json.String "\xc3\xa9");
  Alcotest.(check bool) "3-byte utf8 from \\u" true
    (Obs.Json.parse {| "\u20ac" |} = Obs.Json.String "\xe2\x82\xac");
  match Obs.Json.parse {| "\u00g1" |} with
  | exception Obs.Json.Parse_error _ -> ()
  | _ -> Alcotest.fail "accepted bad hex escape"

let test_json_member_number () =
  let doc = Obs.Json.parse {| {"x": 3, "y": 4.5} |} in
  let num k = Option.bind (Obs.Json.member k doc) Obs.Json.number in
  Alcotest.(check (option (float 1e-12))) "int member" (Some 3.) (num "x");
  Alcotest.(check (option (float 1e-12))) "float member" (Some 4.5) (num "y");
  Alcotest.(check bool) "missing" true (Obs.Json.member "z" doc = None);
  Alcotest.(check bool) "number of a string" true (Obs.Json.number (Obs.Json.String "x") = None)

(* {1 Span} *)

let with_tracing f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let test_span_disabled_collects_nothing () =
  Obs.Span.reset ();
  let r = Obs.Span.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.events ()))

let test_span_nesting_parents () =
  with_tracing @@ fun () ->
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "inner" (fun () -> ());
      Obs.Span.with_span "inner" (fun () -> ()));
  match Obs.Span.events () with
  | [ outer; i1; i2 ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.Span.name;
    Alcotest.(check int) "outer is a root" (-1) outer.Obs.Span.parent;
    Alcotest.(check int) "ids sequential" 0 outer.Obs.Span.id;
    List.iter
      (fun (e : Obs.Span.event) ->
        Alcotest.(check string) "inner name" "inner" e.name;
        Alcotest.(check int) "inner parent" outer.Obs.Span.id e.parent)
      [ i1; i2 ];
    Alcotest.(check bool)
      "children within parent" true
      (i1.Obs.Span.start_ns >= outer.Obs.Span.start_ns
      && i1.Obs.Span.start_ns + i1.Obs.Span.dur_ns
         <= outer.Obs.Span.start_ns + outer.Obs.Span.dur_ns)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_recorded_on_raise () =
  with_tracing @@ fun () ->
  (try Obs.Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Obs.Span.events () with
  | [ e ] -> Alcotest.(check string) "recorded" "boom" e.Obs.Span.name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_chrome_roundtrip () =
  with_tracing @@ fun () ->
  Obs.Span.with_span ~args:[ ("k", "v") ] "a" (fun () ->
      Obs.Span.with_span "b" (fun () -> ()));
  (* User args ride along in the export (visible in Perfetto)... *)
  Alcotest.(check bool) "user args exported" true
    (contains_substring ~sub:{|"k":"v"|} (Obs.Json.to_string (Obs.Span.export_chrome ())));
  let before = Obs.Span.events () in
  let after = Obs.Span.events_of_chrome (roundtrip (Obs.Span.export_chrome ())) in
  Alcotest.(check int) "count" (List.length before) (List.length after);
  List.iter2
    (fun (x : Obs.Span.event) (y : Obs.Span.event) ->
      Alcotest.(check int) "id" x.id y.id;
      Alcotest.(check int) "parent" x.parent y.parent;
      Alcotest.(check string) "name" x.name y.name;
      (* Chrome timestamps are microseconds, so ns fields survive only to
         1 us resolution. *)
      Alcotest.(check bool) "start" true (abs (x.start_ns - y.start_ns) < 1000);
      Alcotest.(check bool) "dur" true (abs (x.dur_ns - y.dur_ns) < 1000);
      (* ... but only the structural args (span_id/parent) are re-imported;
         the summary needs nothing else. *)
      Alcotest.(check bool) "user args not re-imported" true (y.args = []))
    before after

let test_span_events_of_chrome_rejects () =
  match Obs.Span.events_of_chrome (Obs.Json.Obj [ ("nope", Obs.Json.Null) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a document without traceEvents"

let test_span_summarize_self_time () =
  (* Synthetic events so the arithmetic is exact: parent 0 spans 1000 ns
     and its two "child" spans cover 600, leaving 400 self. *)
  let ev id parent name start_ns dur_ns =
    { Obs.Span.id; parent; name; domain = 0; pid = 0; start_ns; dur_ns; args = [] }
  in
  let rows =
    Obs.Span.summarize
      [ ev 0 (-1) "parent" 0 1000; ev 1 0 "child" 100 500; ev 2 0 "child" 700 100 ]
  in
  match rows with
  | [ a; b ] ->
    (* child: total 600 = self 600, sorted first. *)
    Alcotest.(check string) "top row" "child" a.Obs.Span.row_name;
    Alcotest.(check int) "child calls" 2 a.Obs.Span.calls;
    Alcotest.(check int) "child total" 600 a.Obs.Span.total_ns;
    Alcotest.(check int) "child self" 600 a.Obs.Span.self_ns;
    Alcotest.(check string) "second row" "parent" b.Obs.Span.row_name;
    Alcotest.(check int) "parent total" 1000 b.Obs.Span.total_ns;
    Alcotest.(check int) "parent self" 400 b.Obs.Span.self_ns
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_span_pp_summary () =
  let ev id parent name start_ns dur_ns =
    { Obs.Span.id; parent; name; domain = 0; pid = 0; start_ns; dur_ns; args = [] }
  in
  let rows = Obs.Span.summarize [ ev 0 (-1) "only" 0 2_000_000 ] in
  let s = Format.asprintf "%a" (Obs.Span.pp_summary ~top:5) rows in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check bool) "has the span name" true (contains_substring ~sub:"only" s)

(* {1 Metrics} *)

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "t.disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  let h = Obs.Metrics.histogram ~buckets:[| 1. |] "t.disabled_h" in
  Obs.Metrics.observe h 0.5;
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h)

let test_metrics_counter () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check bool)
    "registration idempotent" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "t.counter") = 5)

let test_metrics_counter_parallel_exact () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.parallel" in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "exact under domains" 40_000 (Obs.Metrics.counter_value c)

let test_metrics_gauge () =
  with_metrics @@ fun () ->
  let g = Obs.Metrics.gauge "t.gauge" in
  Obs.Metrics.set_gauge g 1.5;
  Obs.Metrics.set_gauge g 2.5;
  check_float "last write wins" 2.5 (Obs.Metrics.gauge_value g)

let test_metrics_histogram_buckets () =
  with_metrics @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 10. |] "t.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.; 50. ];
  Alcotest.(check int) "count" 3 (Obs.Metrics.histogram_count h);
  check_float "sum" 55.5 (Obs.Metrics.histogram_sum h);
  match mem "t.hist" (mem "histograms" (Obs.Metrics.snapshot ())) with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool)
      "one observation per bucket" true
      (List.assoc "counts" fields
      = Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 1; Obs.Json.Int 1 ])
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_histogram_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid histogram"
  in
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[||] "t.bad_empty");
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[| 2.; 1. |] "t.bad_order");
  let _ = Obs.Metrics.histogram ~buckets:[| 1.; 2. |] "t.conflict" in
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[| 1.; 3. |] "t.conflict")

let test_metrics_snapshot_deterministic () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.snap" in
  Obs.Metrics.add c 3;
  let strip_seq j =
    match j with
    | Obs.Json.Obj fields -> List.remove_assoc "seq" fields
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  let s1 = strip_seq (Obs.Metrics.snapshot ~label:"x" ()) in
  let s2 = strip_seq (Obs.Metrics.snapshot ~label:"x" ()) in
  (* Compare the serialized forms: that is the determinism the JSONL
     stream promises (unset gauges are NaN, which serializes as null but
     is not structurally equal to itself). *)
  Alcotest.(check string) "identical modulo seq"
    (Obs.Json.to_string (Obs.Json.Obj s1))
    (Obs.Json.to_string (Obs.Json.Obj s2));
  match List.assoc "counters" s1 with
  | Obs.Json.Obj counters ->
    Alcotest.(check bool) "value exact" true (List.assoc "t.snap" counters = Obs.Json.Int 3);
    let names = List.map fst counters in
    Alcotest.(check bool)
      "names sorted" true
      (List.sort String.compare names = names)
  | _ -> Alcotest.fail "no counters object"

let test_metrics_write_snapshot_jsonl () =
  with_metrics @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "t.jsonl");
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Metrics.write_snapshot ~label:"a" oc;
      Obs.Metrics.write_snapshot ~label:"b" oc;
      close_out oc;
      let ic = open_in path in
      let lines =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> List.init 2 (fun _ -> input_line ic))
      in
      List.iteri
        (fun i line ->
          let doc = Obs.Json.parse line in
          Alcotest.(check bool)
            "has label" true
            (mem "label" doc = Obs.Json.String (if i = 0 then "a" else "b")))
        lines)

let test_metrics_quantiles () =
  (* counts has one slot per finite bound plus the +inf overflow bucket. *)
  let q le counts p = Obs.Metrics.quantile_of ~le ~counts p in
  let le = [| 10.; 20. |] in
  (* Empty histogram: no answer, not a crash. *)
  Alcotest.(check bool) "empty is nan" true (Float.is_nan (q le [| 0; 0; 0 |] 0.5));
  (* All mass in the first bucket interpolates linearly from 0. *)
  check_float "median of first bucket" 5. (q le [| 4; 0; 0 |] 0.5);
  check_float "p100 of first bucket" 10. (q le [| 4; 0; 0 |] 1.0);
  (* Mass split across buckets: rank lands mid-second-bucket. *)
  check_float "interpolated" 15. (q le [| 0; 2; 2 |] 0.25);
  (* The +inf bucket has no upper bound; report the last finite one. *)
  check_float "overflow clamps" 20. (q le [| 0; 2; 2 |] 1.0);
  List.iter
    (fun bad ->
      match q le [| 1; 0; 0 |] bad with
      | exception Invalid_argument _ -> ()
      | v -> Alcotest.failf "q=%g accepted -> %g" bad v)
    [ -0.1; 1.5; Float.nan ];
  (* The registry-level accessor agrees with the raw computation. *)
  with_metrics @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:le "t.quant" in
  List.iter (Obs.Metrics.observe h) [ 1.; 2.; 3.; 4. ];
  check_float "histogram quantile" 5. (Obs.Metrics.quantile h 0.5)

let test_metrics_contribution_fold () =
  with_metrics @@ fun () ->
  (* Worker side: some activity, shipped as a delta. *)
  let c = Obs.Metrics.counter "t.agg.c" in
  let g = Obs.Metrics.gauge "t.agg.g" in
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 2. |] "t.agg.h" in
  Obs.Metrics.add c 3;
  Obs.Metrics.set_gauge g 7.5;
  Obs.Metrics.observe h 0.5;
  let d = Obs.Metrics.delta () in
  Alcotest.(check bool) "delta includes zero counters" true
    (List.mem_assoc "t.agg.c" d.Obs.Metrics.d_counters);
  (* Supervisor side: fresh local state plus the stored contribution. *)
  Obs.Metrics.reset ();
  Obs.Metrics.add c 2;
  Obs.Metrics.observe h 1.5;
  Obs.Metrics.set_contribution ~key:1 d;
  let snap = Obs.Metrics.snapshot () in
  Alcotest.(check bool) "counters sum" true
    (mem "t.agg.c" (mem "counters" snap) = Obs.Json.Int 5);
  (* Gauge unset locally after reset: the contribution's value shows. *)
  (match mem "t.agg.g" (mem "gauges" snap) with
  | Obs.Json.Float v -> check_float "contributed gauge" 7.5 v
  | j -> Alcotest.failf "gauge json %s" (Obs.Json.to_string j));
  (* Histograms merge elementwise when the bounds agree. *)
  (match mem "counts" (mem "t.agg.h" (mem "histograms" snap)) with
  | Obs.Json.List l ->
    Alcotest.(check bool) "hist counts elementwise" true
      (l = [ Obs.Json.Int 1; Obs.Json.Int 1; Obs.Json.Int 0 ])
  | j -> Alcotest.failf "hist json %s" (Obs.Json.to_string j));
  (* A locally set gauge wins over the contribution. *)
  Obs.Metrics.set_gauge g 1.25;
  (match mem "t.agg.g" (mem "gauges" (Obs.Metrics.snapshot ())) with
  | Obs.Json.Float v -> check_float "local gauge wins" 1.25 v
  | j -> Alcotest.failf "gauge json %s" (Obs.Json.to_string j));
  (* Replace semantics: re-shipping the same key does not double count. *)
  Obs.Metrics.set_contribution ~key:1 d;
  Alcotest.(check bool) "replace, not accumulate" true
    (mem "t.agg.c" (mem "counters" (Obs.Metrics.snapshot ())) = Obs.Json.Int 5);
  (* A second key does accumulate. *)
  Obs.Metrics.set_contribution ~key:2 d;
  Alcotest.(check bool) "second key adds" true
    (mem "t.agg.c" (mem "counters" (Obs.Metrics.snapshot ())) = Obs.Json.Int 8)

(* {1 Ring} *)

let with_ring f =
  Obs.Ring.reset ();
  Fun.protect ~finally:Obs.Ring.reset f

let test_ring_wraparound () =
  with_ring @@ fun () ->
  let p = Obs.Ring.probe "t.ring.wrap" in
  for i = 0 to 299 do
    Obs.Ring.record p Obs.Ring.Count i
  done;
  let es = Obs.Ring.entries () in
  Alcotest.(check int) "capacity retained" Obs.Ring.capacity (List.length es);
  (* The oldest 44 events were overwritten; the survivors are the last
     256 in sequence order, values tracking sequence. *)
  let seqs = List.map (fun e -> e.Obs.Ring.e_seq) es in
  Alcotest.(check (list int)) "sequences 44..299" (List.init 256 (fun i -> 44 + i)) seqs;
  List.iter
    (fun e ->
      Alcotest.(check int) "value = seq" e.Obs.Ring.e_seq e.Obs.Ring.e_value;
      Alcotest.(check string) "probe name" "t.ring.wrap" e.Obs.Ring.e_name;
      Alcotest.(check bool) "kind" true (e.Obs.Ring.e_kind = Obs.Ring.Count))
    es

let test_ring_attach_read () =
  with_ring @@ fun () ->
  let path = Filename.temp_file "obs_ring" ".ring" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      (* Probes interned before attach must survive into the file header. *)
      let early = Obs.Ring.probe "t.ring.early" in
      Obs.Ring.attach ~path ~lane:3;
      let late = Obs.Ring.probe "t.ring.late" in
      Obs.Ring.record early Obs.Ring.Mark 11;
      Obs.Ring.record late Obs.Ring.Fault 22;
      (* No flush step: the mmap IS the persistence (SIGKILL-proof). *)
      Alcotest.(check bool) "magic recognized" true (Obs.Ring.is_ring_file ~path);
      let d = Obs.Ring.read ~path in
      Alcotest.(check int) "lane" 3 d.Obs.Ring.d_lane;
      match d.Obs.Ring.d_entries with
      | [ a; b ] ->
        Alcotest.(check string) "early name" "t.ring.early" a.Obs.Ring.e_name;
        Alcotest.(check int) "early value" 11 a.Obs.Ring.e_value;
        Alcotest.(check string) "late name" "t.ring.late" b.Obs.Ring.e_name;
        Alcotest.(check bool) "fault kind" true (b.Obs.Ring.e_kind = Obs.Ring.Fault);
        let s = Format.asprintf "%a" Obs.Ring.pp d in
        Alcotest.(check bool) "pp mentions probe" true
          (contains_substring ~sub:"t.ring.early" s)
      | es -> Alcotest.failf "expected 2 entries, got %d" (List.length es))

let test_ring_read_rejects_garbage () =
  let path = Filename.temp_file "obs_ring" ".not" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      output_string oc "definitely not a flight recorder";
      close_out oc;
      Alcotest.(check bool) "magic rejected" false (Obs.Ring.is_ring_file ~path);
      match Obs.Ring.read ~path with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.fail "read accepted garbage")

(* {1 Cross-process span merging} *)

let test_span_drain_ingest () =
  with_tracing @@ fun () ->
  Obs.Span.with_span "local" (fun () -> ());
  let drained = Obs.Span.drain ~pid:2 () in
  Alcotest.(check int) "drained one" 1 (List.length drained);
  Alcotest.(check int) "tagged with lane" 2 (List.hd drained).Obs.Span.pid;
  Alcotest.(check int) "local events removed" 0 (List.length (Obs.Span.events ()));
  (* Draining does not restart ids: the next span continues the line. *)
  Obs.Span.with_span "next" (fun () -> ());
  Obs.Span.ingest drained;
  match Obs.Span.events () with
  | [ a; b ] ->
    (* (pid, id) order: lane 0 first. *)
    Alcotest.(check string) "lane 0 first" "next" a.Obs.Span.name;
    Alcotest.(check int) "id continues" 1 a.Obs.Span.id;
    Alcotest.(check string) "ingested after" "local" b.Obs.Span.name;
    Alcotest.(check int) "ingested keeps id" 0 b.Obs.Span.id
  | evs -> Alcotest.failf "expected 2 events, got %d" (List.length evs)

let test_span_on_fork_watermark () =
  with_tracing @@ fun () ->
  Obs.Span.with_span "parent-side" (fun () -> ());
  (* A forked worker drops inherited events and restarts ids at the
     supervisor-issued watermark. *)
  Obs.Span.on_fork ~next_id:40;
  Alcotest.(check int) "inherited events dropped" 0 (List.length (Obs.Span.events ()));
  Obs.Span.with_span "child-side" (fun () -> ());
  match Obs.Span.events () with
  | [ e ] -> Alcotest.(check int) "ids restart at watermark" 40 e.Obs.Span.id
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_summarize_cross_pid () =
  (* Two lanes sharing span ids: lane 1's child (parent=0) must not be
     subtracted from lane 0's span 0 — children are per (pid, parent). *)
  let ev pid id parent name start_ns dur_ns =
    { Obs.Span.id; parent; name; domain = 0; pid; start_ns; dur_ns; args = [] }
  in
  let events =
    [
      ev 0 0 (-1) "root" 0 1000;
      ev 1 0 (-1) "root" 0 800;
      ev 1 1 0 "leaf" 100 300;
    ]
  in
  (match Obs.Span.summarize events with
  | [ a; b ] ->
    Alcotest.(check string) "root aggregates lanes" "root" a.Obs.Span.row_name;
    Alcotest.(check int) "aggregated row has no pid" (-1) a.Obs.Span.row_pid;
    Alcotest.(check int) "root calls" 2 a.Obs.Span.calls;
    (* Only lane 1's root loses its own child's 300; lane 0 keeps 1000. *)
    Alcotest.(check int) "self subtracts per-lane only" 1500 a.Obs.Span.self_ns;
    Alcotest.(check string) "leaf row" "leaf" b.Obs.Span.row_name
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows));
  match Obs.Span.summarize ~by_process:true events with
  | [ r1000; r500; leaf ] ->
    Alcotest.(check int) "lane 0 root alone" 0 r1000.Obs.Span.row_pid;
    Alcotest.(check int) "lane 0 self" 1000 r1000.Obs.Span.self_ns;
    Alcotest.(check int) "lane 1 root alone" 1 r500.Obs.Span.row_pid;
    Alcotest.(check int) "lane 1 self" 500 r500.Obs.Span.self_ns;
    Alcotest.(check int) "leaf lane" 1 leaf.Obs.Span.row_pid;
    (* Duration quantiles are per-row, nearest rank. *)
    Alcotest.(check int) "leaf p50" 300 leaf.Obs.Span.p50_ns
  | rows -> Alcotest.failf "expected 3 rows, got %d" (List.length rows)

(* {1 Report} *)

let test_report_torn_jsonl () =
  with_metrics @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "t.report.c");
  let path = Filename.temp_file "obs_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Metrics.write_snapshot ~label:"epoch 1" oc;
      (* A kill mid-write tears the final line; blank lines also happen. *)
      output_string oc "\n";
      output_string oc "{\"label\": \"epoch 2\", \"counters\": {\"t.report";
      close_out oc;
      let mf = Obs.Report.read_metrics ~path in
      Alcotest.(check int) "parsed snapshots" 1 (List.length mf.Obs.Report.snapshots);
      Alcotest.(check int) "torn lines counted" 1 mf.Obs.Report.torn;
      let s = Format.asprintf "%a" (fun ppf () -> Obs.Report.pp ~metrics:mf ppf ()) () in
      Alcotest.(check bool) "report warns about torn lines" true
        (contains_substring ~sub:"torn" s))

let test_report_sections () =
  (* A report fed shard counters renders the restart timeline with
     latency quantiles from the shard.restart_ms histogram. *)
  with_metrics @@ fun () ->
  Obs.Metrics.add (Obs.Metrics.counter "shard.spawns") 3;
  Obs.Metrics.add (Obs.Metrics.counter "shard.restarts") 1;
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~buckets:Obs.Metrics.default_ms_buckets "shard.restart_ms")
    4.2;
  let path = Filename.temp_file "obs_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Metrics.write_snapshot ~label:"epoch 1" oc;
      close_out oc;
      let mf = Obs.Report.read_metrics ~path in
      let s = Format.asprintf "%a" (fun ppf () -> Obs.Report.pp ~metrics:mf ppf ()) () in
      Alcotest.(check bool) "timeline section" true
        (contains_substring ~sub:"restart" s);
      Alcotest.(check bool) "latency quantiles" true (contains_substring ~sub:"p99" s))

let test_report_lp_section () =
  (* Simplex kernel counters render the LP kernel health section with
     eta-file pressure and refactorization latency quantiles. *)
  with_metrics @@ fun () ->
  Obs.Metrics.add (Obs.Metrics.counter "simplex.solves") 2;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.pivots") 31;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.refactors") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.bland_activations") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.warm_starts") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.pivots_steepest_edge") 20;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.dual_solves") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.dual_pivots") 4;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.warm_rejects") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.warm_rejects_shape") 1;
  Obs.Metrics.add (Obs.Metrics.counter "simplex.ft_updates") 9;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "simplex.spike_growth") 3.5;
  Obs.Metrics.set_gauge (Obs.Metrics.gauge "simplex.eta_len") 7.;
  Obs.Metrics.observe
    (Obs.Metrics.histogram ~buckets:[| 1e3; 1e4; 1e5; 1e6 |] "simplex.refactor_ns")
    42_000.;
  let path = Filename.temp_file "obs_report" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Metrics.write_snapshot ~label:"epoch 1" oc;
      close_out oc;
      let mf = Obs.Report.read_metrics ~path in
      let s = Format.asprintf "%a" (fun ppf () -> Obs.Report.pp ~metrics:mf ppf ()) () in
      Alcotest.(check bool) "LP section present" true
        (contains_substring ~sub:"LP kernel health" s);
      Alcotest.(check bool) "Bland activations surfaced" true
        (contains_substring ~sub:"1 Bland activation(s)" s);
      Alcotest.(check bool) "update count surfaced" true
        (contains_substring ~sub:"basis updates since refactorization: 7" s);
      Alcotest.(check bool) "per-rule pivots surfaced" true
        (contains_substring ~sub:"steepest-edge:" s);
      Alcotest.(check bool) "dual line surfaced" true
        (contains_substring ~sub:"dual: 1 solve(s), 4 pivot(s)" s);
      Alcotest.(check bool) "reject reasons surfaced" true
        (contains_substring ~sub:"1 shape" s);
      Alcotest.(check bool) "FT updates surfaced" true
        (contains_substring ~sub:"FT updates: 9 (worst multiplier growth 3.5)" s);
      Alcotest.(check bool) "refactor latency quantiles" true
        (contains_substring ~sub:"refactor time" s))

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float precision" `Quick test_json_float_precision;
          Alcotest.test_case "non-finite to null" `Quick test_json_nonfinite_is_null;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "depth limit" `Quick test_json_depth_limit;
          Alcotest.test_case "rejects NaN/Infinity literals" `Quick
            test_json_rejects_nonfinite_literals;
          Alcotest.test_case "string escapes" `Quick test_json_string_escapes;
          Alcotest.test_case "member and number" `Quick test_json_member_number;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled collects nothing" `Quick
            test_span_disabled_collects_nothing;
          Alcotest.test_case "nesting and parents" `Quick test_span_nesting_parents;
          Alcotest.test_case "recorded on raise" `Quick test_span_recorded_on_raise;
          Alcotest.test_case "chrome roundtrip" `Quick test_span_chrome_roundtrip;
          Alcotest.test_case "events_of_chrome rejects" `Quick
            test_span_events_of_chrome_rejects;
          Alcotest.test_case "summarize self time" `Quick test_span_summarize_self_time;
          Alcotest.test_case "pp_summary" `Quick test_span_pp_summary;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "parallel exact" `Quick test_metrics_counter_parallel_exact;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_metrics_histogram_validation;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_metrics_snapshot_deterministic;
          Alcotest.test_case "jsonl writer" `Quick test_metrics_write_snapshot_jsonl;
          Alcotest.test_case "quantiles" `Quick test_metrics_quantiles;
          Alcotest.test_case "contribution fold" `Quick test_metrics_contribution_fold;
        ] );
      ( "ring",
        [
          Alcotest.test_case "wraparound keeps last 256" `Quick test_ring_wraparound;
          Alcotest.test_case "attach and read back" `Quick test_ring_attach_read;
          Alcotest.test_case "read rejects garbage" `Quick test_ring_read_rejects_garbage;
        ] );
      ( "merge",
        [
          Alcotest.test_case "drain and ingest" `Quick test_span_drain_ingest;
          Alcotest.test_case "on_fork watermark" `Quick test_span_on_fork_watermark;
          Alcotest.test_case "summarize across lanes" `Quick test_span_summarize_cross_pid;
        ] );
      ( "report",
        [
          Alcotest.test_case "torn jsonl tolerated" `Quick test_report_torn_jsonl;
          Alcotest.test_case "shard timeline section" `Quick test_report_sections;
          Alcotest.test_case "LP kernel health section" `Quick test_report_lp_section;
        ] );
    ]
