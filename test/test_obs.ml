(* Tests for the observability layer: the minimal JSON codec, nestable
   spans with Chrome export, and the global metrics registry.

   Span and Metrics are process-global, so every test that enables them
   disables and resets on the way out (Fun.protect) to stay hermetic. *)

let check_float ?(tol = 1e-12) msg expected actual =
  Alcotest.(check (float tol)) msg expected actual

(* {1 Json} *)

let roundtrip v = Obs.Json.parse (Obs.Json.to_string v)

(* Total lookup: missing members read as [Null]. *)
let mem k j = Option.value ~default:Obs.Json.Null (Obs.Json.member k j)

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_json_roundtrip () =
  let v =
    Obs.Json.Obj
      [
        ("s", Obs.Json.String "a\"b\\c\nd\tz");
        ("i", Obs.Json.Int (-42));
        ("f", Obs.Json.Float 1.5);
        ("b", Obs.Json.Bool true);
        ("n", Obs.Json.Null);
        ("l", Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Obj []; Obs.Json.List [] ]);
      ]
  in
  Alcotest.(check bool) "roundtrip" true (roundtrip v = v)

let test_json_float_precision () =
  (* %.17g round-trips every float exactly. *)
  let v = 0.1 +. 0.2 in
  match roundtrip (Obs.Json.Float v) with
  | Obs.Json.Float v' -> check_float "exact" v v'
  | _ -> Alcotest.fail "expected float"

let test_json_nonfinite_is_null () =
  (* JSON has no nan/inf; the writer degrades them to null. *)
  Alcotest.(check bool) "nan" true (roundtrip (Obs.Json.Float Float.nan) = Obs.Json.Null);
  Alcotest.(check bool)
    "inf" true
    (roundtrip (Obs.Json.Float Float.infinity) = Obs.Json.Null)

let test_json_parse_basics () =
  Alcotest.(check bool)
    "object" true
    (Obs.Json.parse {| {"a": [1, 2.5, "xA", false, null]} |}
    = Obs.Json.Obj
        [
          ( "a",
            Obs.Json.List
              [
                Obs.Json.Int 1;
                Obs.Json.Float 2.5;
                Obs.Json.String "xA";
                Obs.Json.Bool false;
                Obs.Json.Null;
              ] );
        ])

let test_json_parse_errors () =
  let rejects s =
    match Obs.Json.parse s with
    | exception Obs.Json.Parse_error _ -> ()
    | _ -> Alcotest.failf "accepted %S" s
  in
  rejects "";
  rejects "{";
  rejects "[1,]";
  rejects "{\"a\": }";
  rejects "tru";
  rejects "1 2";
  (* trailing garbage *)
  rejects "\"unterminated"

let test_json_member_number () =
  let doc = Obs.Json.parse {| {"x": 3, "y": 4.5} |} in
  let num k = Option.bind (Obs.Json.member k doc) Obs.Json.number in
  Alcotest.(check (option (float 1e-12))) "int member" (Some 3.) (num "x");
  Alcotest.(check (option (float 1e-12))) "float member" (Some 4.5) (num "y");
  Alcotest.(check bool) "missing" true (Obs.Json.member "z" doc = None);
  Alcotest.(check bool) "number of a string" true (Obs.Json.number (Obs.Json.String "x") = None)

(* {1 Span} *)

let with_tracing f =
  Obs.Span.reset ();
  Obs.Span.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Span.reset ())
    f

let test_span_disabled_collects_nothing () =
  Obs.Span.reset ();
  let r = Obs.Span.with_span "ghost" (fun () -> 7) in
  Alcotest.(check int) "result" 7 r;
  Alcotest.(check int) "no events" 0 (List.length (Obs.Span.events ()))

let test_span_nesting_parents () =
  with_tracing @@ fun () ->
  Obs.Span.with_span "outer" (fun () ->
      Obs.Span.with_span "inner" (fun () -> ());
      Obs.Span.with_span "inner" (fun () -> ()));
  match Obs.Span.events () with
  | [ outer; i1; i2 ] ->
    Alcotest.(check string) "outer name" "outer" outer.Obs.Span.name;
    Alcotest.(check int) "outer is a root" (-1) outer.Obs.Span.parent;
    Alcotest.(check int) "ids sequential" 0 outer.Obs.Span.id;
    List.iter
      (fun (e : Obs.Span.event) ->
        Alcotest.(check string) "inner name" "inner" e.name;
        Alcotest.(check int) "inner parent" outer.Obs.Span.id e.parent)
      [ i1; i2 ];
    Alcotest.(check bool)
      "children within parent" true
      (i1.Obs.Span.start_ns >= outer.Obs.Span.start_ns
      && i1.Obs.Span.start_ns + i1.Obs.Span.dur_ns
         <= outer.Obs.Span.start_ns + outer.Obs.Span.dur_ns)
  | evs -> Alcotest.failf "expected 3 events, got %d" (List.length evs)

let test_span_recorded_on_raise () =
  with_tracing @@ fun () ->
  (try Obs.Span.with_span "boom" (fun () -> failwith "x") with Failure _ -> ());
  match Obs.Span.events () with
  | [ e ] -> Alcotest.(check string) "recorded" "boom" e.Obs.Span.name
  | evs -> Alcotest.failf "expected 1 event, got %d" (List.length evs)

let test_span_chrome_roundtrip () =
  with_tracing @@ fun () ->
  Obs.Span.with_span ~args:[ ("k", "v") ] "a" (fun () ->
      Obs.Span.with_span "b" (fun () -> ()));
  (* User args ride along in the export (visible in Perfetto)... *)
  Alcotest.(check bool) "user args exported" true
    (contains_substring ~sub:{|"k":"v"|} (Obs.Json.to_string (Obs.Span.export_chrome ())));
  let before = Obs.Span.events () in
  let after = Obs.Span.events_of_chrome (roundtrip (Obs.Span.export_chrome ())) in
  Alcotest.(check int) "count" (List.length before) (List.length after);
  List.iter2
    (fun (x : Obs.Span.event) (y : Obs.Span.event) ->
      Alcotest.(check int) "id" x.id y.id;
      Alcotest.(check int) "parent" x.parent y.parent;
      Alcotest.(check string) "name" x.name y.name;
      (* Chrome timestamps are microseconds, so ns fields survive only to
         1 us resolution. *)
      Alcotest.(check bool) "start" true (abs (x.start_ns - y.start_ns) < 1000);
      Alcotest.(check bool) "dur" true (abs (x.dur_ns - y.dur_ns) < 1000);
      (* ... but only the structural args (span_id/parent) are re-imported;
         the summary needs nothing else. *)
      Alcotest.(check bool) "user args not re-imported" true (y.args = []))
    before after

let test_span_events_of_chrome_rejects () =
  match Obs.Span.events_of_chrome (Obs.Json.Obj [ ("nope", Obs.Json.Null) ]) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted a document without traceEvents"

let test_span_summarize_self_time () =
  (* Synthetic events so the arithmetic is exact: parent 0 spans 1000 ns
     and its two "child" spans cover 600, leaving 400 self. *)
  let ev id parent name start_ns dur_ns =
    { Obs.Span.id; parent; name; domain = 0; start_ns; dur_ns; args = [] }
  in
  let rows =
    Obs.Span.summarize
      [ ev 0 (-1) "parent" 0 1000; ev 1 0 "child" 100 500; ev 2 0 "child" 700 100 ]
  in
  match rows with
  | [ a; b ] ->
    (* child: total 600 = self 600, sorted first. *)
    Alcotest.(check string) "top row" "child" a.Obs.Span.row_name;
    Alcotest.(check int) "child calls" 2 a.Obs.Span.calls;
    Alcotest.(check int) "child total" 600 a.Obs.Span.total_ns;
    Alcotest.(check int) "child self" 600 a.Obs.Span.self_ns;
    Alcotest.(check string) "second row" "parent" b.Obs.Span.row_name;
    Alcotest.(check int) "parent total" 1000 b.Obs.Span.total_ns;
    Alcotest.(check int) "parent self" 400 b.Obs.Span.self_ns
  | rows -> Alcotest.failf "expected 2 rows, got %d" (List.length rows)

let test_span_pp_summary () =
  let ev id parent name start_ns dur_ns =
    { Obs.Span.id; parent; name; domain = 0; start_ns; dur_ns; args = [] }
  in
  let rows = Obs.Span.summarize [ ev 0 (-1) "only" 0 2_000_000 ] in
  let s = Format.asprintf "%a" (Obs.Span.pp_summary ~top:5) rows in
  Alcotest.(check bool) "non-empty" true (String.length s > 0);
  Alcotest.(check bool) "has the span name" true (contains_substring ~sub:"only" s)

(* {1 Metrics} *)

let with_metrics f =
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    f

let test_metrics_disabled_noop () =
  Obs.Metrics.reset ();
  let c = Obs.Metrics.counter "t.disabled" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 10;
  Alcotest.(check int) "counter untouched" 0 (Obs.Metrics.counter_value c);
  let h = Obs.Metrics.histogram ~buckets:[| 1. |] "t.disabled_h" in
  Obs.Metrics.observe h 0.5;
  Alcotest.(check int) "histogram untouched" 0 (Obs.Metrics.histogram_count h)

let test_metrics_counter () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.counter" in
  Obs.Metrics.incr c;
  Obs.Metrics.add c 4;
  Alcotest.(check int) "value" 5 (Obs.Metrics.counter_value c);
  Alcotest.(check bool)
    "registration idempotent" true
    (Obs.Metrics.counter_value (Obs.Metrics.counter "t.counter") = 5)

let test_metrics_counter_parallel_exact () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.parallel" in
  let domains =
    Array.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to 10_000 do
              Obs.Metrics.incr c
            done))
  in
  Array.iter Domain.join domains;
  Alcotest.(check int) "exact under domains" 40_000 (Obs.Metrics.counter_value c)

let test_metrics_gauge () =
  with_metrics @@ fun () ->
  let g = Obs.Metrics.gauge "t.gauge" in
  Obs.Metrics.set_gauge g 1.5;
  Obs.Metrics.set_gauge g 2.5;
  check_float "last write wins" 2.5 (Obs.Metrics.gauge_value g)

let test_metrics_histogram_buckets () =
  with_metrics @@ fun () ->
  let h = Obs.Metrics.histogram ~buckets:[| 1.; 10. |] "t.hist" in
  List.iter (Obs.Metrics.observe h) [ 0.5; 5.; 50. ];
  Alcotest.(check int) "count" 3 (Obs.Metrics.histogram_count h);
  check_float "sum" 55.5 (Obs.Metrics.histogram_sum h);
  match mem "t.hist" (mem "histograms" (Obs.Metrics.snapshot ())) with
  | Obs.Json.Obj fields ->
    Alcotest.(check bool)
      "one observation per bucket" true
      (List.assoc "counts" fields
      = Obs.Json.List [ Obs.Json.Int 1; Obs.Json.Int 1; Obs.Json.Int 1 ])
  | _ -> Alcotest.fail "histogram not in snapshot"

let test_metrics_histogram_validation () =
  let invalid f = match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail "accepted invalid histogram"
  in
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[||] "t.bad_empty");
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[| 2.; 1. |] "t.bad_order");
  let _ = Obs.Metrics.histogram ~buckets:[| 1.; 2. |] "t.conflict" in
  invalid (fun () -> Obs.Metrics.histogram ~buckets:[| 1.; 3. |] "t.conflict")

let test_metrics_snapshot_deterministic () =
  with_metrics @@ fun () ->
  let c = Obs.Metrics.counter "t.snap" in
  Obs.Metrics.add c 3;
  let strip_seq j =
    match j with
    | Obs.Json.Obj fields -> List.remove_assoc "seq" fields
    | _ -> Alcotest.fail "snapshot is not an object"
  in
  let s1 = strip_seq (Obs.Metrics.snapshot ~label:"x" ()) in
  let s2 = strip_seq (Obs.Metrics.snapshot ~label:"x" ()) in
  (* Compare the serialized forms: that is the determinism the JSONL
     stream promises (unset gauges are NaN, which serializes as null but
     is not structurally equal to itself). *)
  Alcotest.(check string) "identical modulo seq"
    (Obs.Json.to_string (Obs.Json.Obj s1))
    (Obs.Json.to_string (Obs.Json.Obj s2));
  match List.assoc "counters" s1 with
  | Obs.Json.Obj counters ->
    Alcotest.(check bool) "value exact" true (List.assoc "t.snap" counters = Obs.Json.Int 3);
    let names = List.map fst counters in
    Alcotest.(check bool)
      "names sorted" true
      (List.sort String.compare names = names)
  | _ -> Alcotest.fail "no counters object"

let test_metrics_write_snapshot_jsonl () =
  with_metrics @@ fun () ->
  Obs.Metrics.incr (Obs.Metrics.counter "t.jsonl");
  let path = Filename.temp_file "obs_test" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out path in
      Obs.Metrics.write_snapshot ~label:"a" oc;
      Obs.Metrics.write_snapshot ~label:"b" oc;
      close_out oc;
      let ic = open_in path in
      let lines =
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> List.init 2 (fun _ -> input_line ic))
      in
      List.iteri
        (fun i line ->
          let doc = Obs.Json.parse line in
          Alcotest.(check bool)
            "has label" true
            (mem "label" doc = Obs.Json.String (if i = 0 then "a" else "b")))
        lines)

let () =
  Alcotest.run "obs"
    [
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "float precision" `Quick test_json_float_precision;
          Alcotest.test_case "non-finite to null" `Quick test_json_nonfinite_is_null;
          Alcotest.test_case "parse basics" `Quick test_json_parse_basics;
          Alcotest.test_case "parse errors" `Quick test_json_parse_errors;
          Alcotest.test_case "member and number" `Quick test_json_member_number;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled collects nothing" `Quick
            test_span_disabled_collects_nothing;
          Alcotest.test_case "nesting and parents" `Quick test_span_nesting_parents;
          Alcotest.test_case "recorded on raise" `Quick test_span_recorded_on_raise;
          Alcotest.test_case "chrome roundtrip" `Quick test_span_chrome_roundtrip;
          Alcotest.test_case "events_of_chrome rejects" `Quick
            test_span_events_of_chrome_rejects;
          Alcotest.test_case "summarize self time" `Quick test_span_summarize_self_time;
          Alcotest.test_case "pp_summary" `Quick test_span_pp_summary;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "disabled no-op" `Quick test_metrics_disabled_noop;
          Alcotest.test_case "counter" `Quick test_metrics_counter;
          Alcotest.test_case "parallel exact" `Quick test_metrics_counter_parallel_exact;
          Alcotest.test_case "gauge" `Quick test_metrics_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_metrics_histogram_buckets;
          Alcotest.test_case "histogram validation" `Quick test_metrics_histogram_validation;
          Alcotest.test_case "snapshot deterministic" `Quick
            test_metrics_snapshot_deterministic;
          Alcotest.test_case "jsonl writer" `Quick test_metrics_write_snapshot_jsonl;
        ] );
    ]
