(* Tests for the robustness framework: perturbations, ρ, Γ, screening. *)

let check_float ?(tol = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let expect_invalid name f =
  Alcotest.(check bool) name true
    (match f () with exception Invalid_argument _ -> true | _ -> false)

(* {1 Perturb} *)

let test_global_within_band () =
  let rng = Numerics.Rng.create 1 in
  let x = [| 1.; 2.; 4. |] in
  for _ = 1 to 200 do
    let y = Robustness.Perturb.global rng ~delta:0.1 x in
    Array.iteri
      (fun i yi ->
        let r = yi /. x.(i) in
        if r < 0.9 -. 1e-12 || r > 1.1 +. 1e-12 then Alcotest.failf "band violated: %g" r)
      y
  done

let test_local_changes_one () =
  let rng = Numerics.Rng.create 2 in
  let x = [| 1.; 2.; 4. |] in
  for _ = 1 to 100 do
    let y = Robustness.Perturb.local rng ~delta:0.1 ~index:1 x in
    check_float "x0 untouched" x.(0) y.(0);
    check_float "x2 untouched" x.(2) y.(2)
  done

let test_zero_delta_identity () =
  let rng = Numerics.Rng.create 3 in
  let x = [| 1.; 2. |] in
  let y = Robustness.Perturb.global rng ~delta:0. x in
  Alcotest.(check bool) "identity" true (Numerics.Vec.approx_equal x y)

let test_ensemble_size () =
  let rng = Numerics.Rng.create 4 in
  let e = Robustness.Perturb.ensemble rng ~delta:0.1 ~trials:37 [| 1. |] in
  Alcotest.(check int) "37 trials" 37 (List.length e)

let test_ensemble_local_mode () =
  let rng = Numerics.Rng.create 5 in
  let e = Robustness.Perturb.ensemble rng ~delta:0.2 ~trials:50 ~index:0 [| 1.; 9. |] in
  List.iter (fun y -> check_float "only index 0 moves" 9. y.(1)) e

(* {1 Yield} *)

let test_rho_absolute () =
  let f x = x.(0) in
  Alcotest.(check bool) "within eps" true (Robustness.Yield.rho ~f ~eps:0.5 [| 1. |] [| 1.4 |]);
  Alcotest.(check bool) "outside eps" false (Robustness.Yield.rho ~f ~eps:0.5 [| 1. |] [| 1.6 |])

let test_rho_relative () =
  let f x = x.(0) in
  Alcotest.(check bool) "5% of 10" true
    (Robustness.Yield.rho_relative ~f ~eps_frac:0.05 [| 10. |] [| 10.4 |]);
  Alcotest.(check bool) "beyond 5%" false
    (Robustness.Yield.rho_relative ~f ~eps_frac:0.05 [| 10. |] [| 10.6 |])

let test_gamma_linear_function () =
  (* f(x) = x₀: a 10% perturbation changes f by up to 10%, so with ε = 5%
     exactly half the uniform ensemble survives (in expectation). *)
  let rng = Numerics.Rng.create 6 in
  let r = Robustness.Yield.gamma ~rng ~f:(fun x -> x.(0)) ~trials:20000 [| 1. |] in
  check_float ~tol:2. "half survive" 50. r.Robustness.Yield.yield_pct

let test_gamma_constant_function () =
  let rng = Numerics.Rng.create 7 in
  let r = Robustness.Yield.gamma ~rng ~f:(fun _ -> 42.) ~trials:500 [| 1.; 2. |] in
  check_float "fully robust" 100. r.Robustness.Yield.yield_pct;
  Alcotest.(check int) "survivors" 500 r.Robustness.Yield.survivors

let test_gamma_fragile_function () =
  (* A very steep function: almost no perturbation survives ε = 5%. *)
  let rng = Numerics.Rng.create 8 in
  let f x = exp (20. *. x.(0)) in
  let r = Robustness.Yield.gamma ~rng ~f ~trials:2000 [| 1. |] in
  Alcotest.(check bool) "fragile" true (r.Robustness.Yield.yield_pct < 10.)

let test_gamma_local_index () =
  (* f depends only on x₀: perturbing x₁ locally is always robust. *)
  let rng = Numerics.Rng.create 9 in
  let f x = x.(0) in
  let r = Robustness.Yield.gamma ~rng ~f ~trials:300 ~index:1 [| 1.; 5. |] in
  check_float "insensitive direction" 100. r.Robustness.Yield.yield_pct

let test_gamma_nominal_recorded () =
  let rng = Numerics.Rng.create 10 in
  let r = Robustness.Yield.gamma ~rng ~f:(fun x -> 2. *. x.(0)) ~trials:10 [| 3. |] in
  check_float "nominal" 6. r.Robustness.Yield.nominal

(* {1 Screen} *)

let mk_sol x f = { Moo.Solution.x; f; v = 0. }

let test_screen_solutions () =
  let rng = Numerics.Rng.create 11 in
  let sols = [ mk_sol [| 1. |] [| 1.; 1. |]; mk_sol [| 2. |] [| 2.; 0.5 |] ] in
  let entries = Robustness.Screen.screen_solutions ~rng ~f:(fun _ -> 1.) ~trials:50 sols in
  Alcotest.(check int) "entry per solution" 2 (List.length entries);
  List.iter
    (fun e -> check_float "constant property robust" 100. e.Robustness.Screen.yield.yield_pct)
    entries

let test_front_sweep_count () =
  let rng = Numerics.Rng.create 12 in
  let front =
    List.init 40 (fun i ->
        let t = float_of_int i /. 39. in
        mk_sol [| t |] [| t; 1. -. t |])
  in
  let entries = Robustness.Screen.front_sweep ~rng ~f:(fun _ -> 1.) ~trials:20 ~k:10 front in
  Alcotest.(check int) "k entries" 10 (List.length entries)

let test_local_analysis_profile () =
  let rng = Numerics.Rng.create 13 in
  (* f sensitive to x₀ (steep), insensitive to x₁. *)
  let f x = exp (30. *. x.(0)) +. (0.0001 *. x.(1)) in
  let profile = Robustness.Screen.local_analysis ~rng ~f ~trials:200 [| 1.; 1. |] in
  match profile with
  | [ p0; p1 ] ->
    Alcotest.(check bool) "sensitive component low yield" true
      (p0.Robustness.Screen.yield_pct < p1.Robustness.Screen.yield_pct);
    Alcotest.(check int) "indices" 1 p1.Robustness.Screen.index
  | _ -> Alcotest.fail "profile shape"

let test_worst_case () =
  let rng = Numerics.Rng.create 15 in
  (* f(x) = x₀: a 10% perturbation makes the worst case ≈ 0.9·nominal. *)
  let w = Robustness.Screen.worst_of ~rng ~f:(fun x -> x.(0)) ~trials:3000 [| 10. |] in
  check_float ~tol:0.05 "nominal" 10. w.Robustness.Screen.nominal;
  check_float ~tol:0.15 "worst near 9" 9. w.Robustness.Screen.worst;
  check_float ~tol:1.5 "drop ~10%" 10. w.Robustness.Screen.drop_pct

let test_worst_case_constant () =
  let rng = Numerics.Rng.create 16 in
  let w = Robustness.Screen.worst_of ~rng ~f:(fun _ -> 7.) ~trials:100 [| 1.; 2. |] in
  check_float "no drop" 0. w.Robustness.Screen.drop_pct

let test_max_yield () =
  let rng = Numerics.Rng.create 14 in
  let robust = mk_sol [| 0.0001 |] [| 1.; 1. |] in
  let fragile = mk_sol [| 1. |] [| 0.5; 1.5 |] in
  (* f = exp(10 x): tiny x is robust to relative perturbation... both get
     multiplicative noise; x=0.0001 changes f by ~0.1% → robust;
     x=1 changes f by ~e^±1 → fragile. *)
  let f x = exp (10. *. x.(0)) in
  let entries = Robustness.Screen.screen_solutions ~rng ~f ~trials:200 [ robust; fragile ] in
  let best = Robustness.Screen.max_yield entries in
  Alcotest.(check bool) "robust one wins" true
    (best.Robustness.Screen.solution == robust)

let test_max_yield_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Screen.max_yield: empty") (fun () ->
      ignore (Robustness.Screen.max_yield []))

(* {1 Properties} *)

let prop_yield_in_range =
  QCheck.Test.make ~name:"yield is a percentage" ~count:50
    QCheck.(pair (int_bound 100000) (float_range 0.5 5.))
    (fun (seed, x0) ->
      let rng = Numerics.Rng.create seed in
      let r = Robustness.Yield.gamma ~rng ~f:(fun x -> x.(0) ** 2.) ~trials:100 [| x0 |] in
      r.Robustness.Yield.yield_pct >= 0. && r.Robustness.Yield.yield_pct <= 100.)

let prop_larger_eps_no_worse =
  QCheck.Test.make ~name:"yield monotone in eps" ~count:30
    QCheck.(int_bound 100000)
    (fun seed ->
      let f x = (2. *. x.(0)) +. x.(1) in
      let x = [| 1.; 3. |] in
      let y1 =
        (Robustness.Yield.gamma ~rng:(Numerics.Rng.create seed) ~f ~eps_frac:0.02
           ~trials:300 x).Robustness.Yield.yield_pct
      in
      let y2 =
        (Robustness.Yield.gamma ~rng:(Numerics.Rng.create seed) ~f ~eps_frac:0.08
           ~trials:300 x).Robustness.Yield.yield_pct
      in
      y2 >= y1)

let test_perturb_invalid_arguments () =
  let rng = Numerics.Rng.create 7 in
  let x = [| 1.; 2. |] in
  expect_invalid "global: delta = 1" (fun () ->
      Robustness.Perturb.global rng ~delta:1. x);
  expect_invalid "global: negative delta" (fun () ->
      Robustness.Perturb.global rng ~delta:(-0.1) x);
  expect_invalid "local: delta = 1" (fun () ->
      Robustness.Perturb.local rng ~delta:1. ~index:0 x);
  expect_invalid "local: index out of range" (fun () ->
      Robustness.Perturb.local rng ~delta:0.1 ~index:2 x);
  expect_invalid "local: negative index" (fun () ->
      Robustness.Perturb.local rng ~delta:0.1 ~index:(-1) x);
  expect_invalid "ensemble: zero trials" (fun () ->
      Robustness.Perturb.ensemble rng ~delta:0.1 ~trials:0 x)

let test_yield_invalid_arguments () =
  let rng = Numerics.Rng.create 8 in
  let f x = x.(0) in
  expect_invalid "rho: negative eps" (fun () ->
      Robustness.Yield.rho ~f ~eps:(-1.) [| 1. |] [| 1. |]);
  expect_invalid "gamma: zero trials" (fun () ->
      Robustness.Yield.gamma ~rng ~f ~trials:0 [| 1. |])

let () =
  let q = List.map QCheck_alcotest.to_alcotest in
  Alcotest.run "robustness"
    [
      ( "perturb",
        [
          Alcotest.test_case "global band" `Quick test_global_within_band;
          Alcotest.test_case "local single component" `Quick test_local_changes_one;
          Alcotest.test_case "zero delta identity" `Quick test_zero_delta_identity;
          Alcotest.test_case "ensemble size" `Quick test_ensemble_size;
          Alcotest.test_case "ensemble local mode" `Quick test_ensemble_local_mode;
        ] );
      ( "perturb-validation",
        [
          Alcotest.test_case "invalid arguments raise" `Quick
            test_perturb_invalid_arguments;
        ] );
      ( "yield",
        [
          Alcotest.test_case "rho absolute" `Quick test_rho_absolute;
          Alcotest.test_case "rho relative" `Quick test_rho_relative;
          Alcotest.test_case "gamma linear = 50%" `Quick test_gamma_linear_function;
          Alcotest.test_case "gamma constant = 100%" `Quick test_gamma_constant_function;
          Alcotest.test_case "gamma fragile" `Quick test_gamma_fragile_function;
          Alcotest.test_case "gamma local index" `Quick test_gamma_local_index;
          Alcotest.test_case "nominal recorded" `Quick test_gamma_nominal_recorded;
        ] );
      ( "yield-validation",
        [
          Alcotest.test_case "invalid arguments raise" `Quick test_yield_invalid_arguments;
        ] );
      ( "screen",
        [
          Alcotest.test_case "screen solutions" `Quick test_screen_solutions;
          Alcotest.test_case "front sweep count" `Quick test_front_sweep_count;
          Alcotest.test_case "local profile" `Quick test_local_analysis_profile;
          Alcotest.test_case "worst case" `Quick test_worst_case;
          Alcotest.test_case "worst case constant" `Quick test_worst_case_constant;
          Alcotest.test_case "max yield" `Quick test_max_yield;
          Alcotest.test_case "max yield empty" `Quick test_max_yield_empty;
        ] );
      ("properties", q [ prop_yield_in_range; prop_larger_eps_no_worse ]);
    ]
