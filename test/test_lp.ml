(* Tests for the bounded-variable simplex and the LP problem builder. *)

let check_float ?(tol = 1e-7) msg expected actual =
  if Float.abs (expected -. actual) > tol then
    Alcotest.failf "%s: expected %.10g, got %.10g" msg expected actual

let solve_expect_optimal p =
  match Lp.Problem.solve p with
  | Lp.Problem.Optimal { x; objective } -> (x, objective)
  | Lp.Problem.Infeasible -> Alcotest.fail "unexpected infeasible"
  | Lp.Problem.Unbounded -> Alcotest.fail "unexpected unbounded"

let test_basic_max () =
  (* max 3x + 2y, x+y <= 4, x+3y <= 6, x,y >= 0 → (4,0), obj 12. *)
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 3.;
  Lp.Problem.set_objective p 1 2.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 4.;
  Lp.Problem.add_row p [ (0, 1.); (1, 3.) ] Lp.Problem.Le 6.;
  let rx, robj = solve_expect_optimal p in
  check_float "objective" 12. robj;
  check_float "x" 4. rx.(0);
  check_float "y" 0. rx.(1)

let test_basic_min () =
  (* min x + y, x + 2y >= 3, 3x + y >= 3 → (0.6, 1.2), obj 1.8. *)
  let p = Lp.Problem.make ~sense:Lp.Problem.Minimize ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.set_objective p 1 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, 2.) ] Lp.Problem.Ge 3.;
  Lp.Problem.add_row p [ (0, 3.); (1, 1.) ] Lp.Problem.Ge 3.;
  let rx, robj = solve_expect_optimal p in
  check_float "objective" 1.8 robj;
  check_float "x" 0.6 rx.(0);
  check_float "y" 1.2 rx.(1)

let test_equality_negative_bounds () =
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 (-1.) 2.;
  Lp.Problem.set_bounds p 1 0. 5.;
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Eq 1.;
  let rx, robj = solve_expect_optimal p in
  check_float "x at its best" 1. rx.(0);
  check_float "objective" 1. robj

let test_upper_bounds_bind () =
  (* max x + y with x <= 1.5, y <= 2.5 and x + y <= 10: box binds. *)
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. 1.5;
  Lp.Problem.set_bounds p 1 0. 2.5;
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.set_objective p 1 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 10.;
  let _rx, robj = solve_expect_optimal p in
  check_float "objective" 4. robj

let test_infeasible () =
  let p = Lp.Problem.make ~n_vars:1 () in
  Lp.Problem.set_bounds p 0 0. 1.;
  Lp.Problem.add_row p [ (0, 1.) ] Lp.Problem.Eq 5.;
  (match Lp.Problem.solve p with
   | Lp.Problem.Infeasible -> ()
   | _ -> Alcotest.fail "expected infeasible")

let test_unbounded () =
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, -1.) ] Lp.Problem.Le 1.;
  (match Lp.Problem.solve p with
   | Lp.Problem.Unbounded -> ()
   | _ -> Alcotest.fail "expected unbounded")

let test_free_variable () =
  (* min x with x free and x >= -7 via a Ge row: answer -7. *)
  let p = Lp.Problem.make ~sense:Lp.Problem.Minimize ~n_vars:1 () in
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.add_row p [ (0, 1.) ] Lp.Problem.Ge (-7.);
  let _rx, robj = solve_expect_optimal p in
  check_float "free var floor" (-7.) robj

let test_degenerate () =
  (* Degenerate vertex: several constraints meet at the optimum. *)
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 1.;
  Lp.Problem.set_objective p 1 1.;
  Lp.Problem.add_row p [ (0, 1.) ] Lp.Problem.Le 1.;
  Lp.Problem.add_row p [ (1, 1.) ] Lp.Problem.Le 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 2.;
  let _rx, robj = solve_expect_optimal p in
  check_float "objective" 2. robj

let test_fixed_variable () =
  (* A variable fixed by equal bounds participates correctly. *)
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0.45 0.45;
  Lp.Problem.set_bounds p 1 0. 10.;
  Lp.Problem.set_objective p 1 1.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 3.;
  let rx, robj = solve_expect_optimal p in
  check_float "fixed var kept" 0.45 rx.(0);
  check_float "objective" 2.55 robj

let test_diet_problem () =
  (* A classic small diet problem with known optimum.
     min 0.6 x1 + 1.0 x2
     s.t. 10 x1 + 4 x2 >= 20 ; 5 x1 + 5 x2 >= 20 ; 2 x1 + 6 x2 >= 12 ; x >= 0
     Optimum at intersection of rows 1 and 2: x1 = 2/3·... solve:
     10x1+4x2=20 & 5x1+5x2=20 → x1 = 2/3, x2 = 10/3, cost 0.4+10/3 ≈ 3.7333
     vs rows 2&3: 5x1+5x2=20 & 2x1+6x2=12 → x1=3, x2=1, cost 2.8. Check
     feasibility of (3,1) in row 1: 34 >= 20 ✓, so optimum is 2.8. *)
  let p = Lp.Problem.make ~sense:Lp.Problem.Minimize ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 0.6;
  Lp.Problem.set_objective p 1 1.0;
  Lp.Problem.add_row p [ (0, 10.); (1, 4.) ] Lp.Problem.Ge 20.;
  Lp.Problem.add_row p [ (0, 5.); (1, 5.) ] Lp.Problem.Ge 20.;
  Lp.Problem.add_row p [ (0, 2.); (1, 6.) ] Lp.Problem.Ge 12.;
  let _rx, robj = solve_expect_optimal p in
  check_float ~tol:1e-6 "diet optimum" 2.8 robj

let test_larger_random_consistency () =
  (* Random feasible LPs: the simplex optimum must satisfy all rows and
     bounds, and the objective must match c·x. *)
  let rng = Numerics.Rng.create 77 in
  for _ = 1 to 20 do
    let n = 3 + Numerics.Rng.int rng 5 in
    let m = 2 + Numerics.Rng.int rng 4 in
    let p = Lp.Problem.make ~n_vars:n () in
    for j = 0 to n - 1 do
      Lp.Problem.set_bounds p j 0. (1. +. Numerics.Rng.uniform rng 0. 9.);
      Lp.Problem.set_objective p j (Numerics.Rng.uniform rng (-1.) 2.)
    done;
    let rows = ref [] in
    for _ = 1 to m do
      let coeffs = List.init n (fun j -> (j, Numerics.Rng.uniform rng 0. 1.)) in
      let rhs = 1. +. Numerics.Rng.uniform rng 0. 10. in
      rows := (coeffs, rhs) :: !rows;
      Lp.Problem.add_row p coeffs Lp.Problem.Le rhs
    done;
    match Lp.Problem.solve p with
    | Lp.Problem.Optimal { x; objective = _ } ->
      (* feasibility of rows *)
      List.iter
        (fun (coeffs, rhs) ->
          let lhs = List.fold_left (fun acc (j, c) -> acc +. (c *. x.(j))) 0. coeffs in
          if lhs > rhs +. 1e-6 then Alcotest.failf "row violated: %g > %g" lhs rhs)
        !rows;
      Array.iteri
        (fun j xj ->
          if j < n && (xj < -1e-9 || xj > 10. +. 1e-6) then
            Alcotest.failf "bound violated: x%d = %g" j xj)
        x
    | Lp.Problem.Infeasible -> Alcotest.fail "random Le problem must be feasible (0 works)"
    | Lp.Problem.Unbounded -> Alcotest.fail "bounded box cannot be unbounded"
  done

let prop_simplex_weak_duality =
  (* For max c·x, A x <= b, 0 <= x <= u: any feasible point's objective is
     a lower bound on the optimum. We test with the origin (always
     feasible for b >= 0). *)
  QCheck.Test.make ~name:"optimum beats origin" ~count:50
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Numerics.Rng.create seed in
      let n = 2 + Numerics.Rng.int rng 4 in
      let p = Lp.Problem.make ~n_vars:n () in
      for j = 0 to n - 1 do
        Lp.Problem.set_bounds p j 0. 5.;
        Lp.Problem.set_objective p j (Numerics.Rng.uniform rng 0. 1.)
      done;
      for _ = 1 to 3 do
        let coeffs = List.init n (fun j -> (j, Numerics.Rng.uniform rng 0. 1.)) in
        Lp.Problem.add_row p coeffs Lp.Problem.Le (1. +. Numerics.Rng.uniform rng 0. 5.)
      done;
      match Lp.Problem.solve p with
      | Lp.Problem.Optimal { objective; _ } -> objective >= -1e-9
      | _ -> false)

(* {1 Kernel oracle: sparse factorized basis vs dense inverse} *)

(* Random bounded LP in raw spec form: n structural variables with
   random sparse columns plus one slack per row, so x = 0, s = rhs is
   always feasible and the objective (supported on the bounded
   structurals only) is always bounded. *)
let random_spec rng =
  let n = 3 + Numerics.Rng.int rng 6 in
  let m = 2 + Numerics.Rng.int rng 4 in
  let cols =
    Array.init (n + m) (fun j ->
        if j >= n then [ (j - n, 1.) ]
        else
          List.init m Fun.id
          |> List.filter_map (fun i ->
                 if Numerics.Rng.uniform rng 0. 1. < 0.6 then
                   Some (i, Numerics.Rng.uniform rng (-1.) 2.)
                 else None))
  in
  let rhs = Array.init m (fun _ -> Numerics.Rng.uniform rng 0.5 8.) in
  let lo = Array.make (n + m) 0. in
  let up = Array.init (n + m) (fun j -> if j < n then 6. else infinity) in
  let obj =
    Array.init (n + m) (fun j -> if j < n then Numerics.Rng.uniform rng (-1.) 2. else 0.)
  in
  { Lp.Simplex.n_rows = m; cols; rhs; obj; lo; up }

let test_sparse_vs_dense_oracle () =
  let rng = Numerics.Rng.create 2024 in
  for _ = 1 to 40 do
    let spec = random_spec rng in
    match
      ( Lp.Simplex.solve ~kernel:`Sparse spec,
        Lp.Simplex.solve ~kernel:`Dense spec )
    with
    | Lp.Simplex.Optimal s, Lp.Simplex.Optimal d ->
      check_float ~tol:1e-6 "kernels agree on the optimum" d.objective s.objective
    | s, d ->
      Alcotest.failf "outcome mismatch: sparse %s, dense %s"
        (match s with
        | Lp.Simplex.Optimal _ -> "optimal"
        | Lp.Simplex.Infeasible -> "infeasible"
        | Lp.Simplex.Unbounded -> "unbounded")
        (match d with
        | Lp.Simplex.Optimal _ -> "optimal"
        | Lp.Simplex.Infeasible -> "infeasible"
        | Lp.Simplex.Unbounded -> "unbounded")
  done

let test_cross_kernel_warm_start () =
  (* A basis is purely structural, so one kernel's optimal basis must
     warm-start the other kernel to the same optimum. *)
  let rng = Numerics.Rng.create 555 in
  for _ = 1 to 10 do
    let spec = random_spec rng in
    let obj_of = function
      | Lp.Simplex.Optimal { objective; _ } -> objective
      | _ -> Alcotest.fail "expected optimal"
    in
    let od, bd = Lp.Simplex.solve_basis ~kernel:`Dense spec in
    let os, bs = Lp.Simplex.solve_basis ~kernel:`Sparse spec in
    (match bd with
    | Some b ->
      let warm = Lp.Simplex.solve ~kernel:`Sparse ~basis:b spec in
      check_float ~tol:1e-6 "dense basis warms sparse solve" (obj_of od) (obj_of warm)
    | None -> ());
    match bs with
    | Some b ->
      let warm = Lp.Simplex.solve ~kernel:`Dense ~basis:b spec in
      check_float ~tol:1e-6 "sparse basis warms dense solve" (obj_of os) (obj_of warm)
    | None -> ()
  done

let test_sparse_deterministic () =
  (* The sparse kernel must be a bit-for-bit deterministic function of
     the spec: identical runs give identical solution vectors. *)
  let rng = Numerics.Rng.create 909 in
  for _ = 1 to 10 do
    let spec = random_spec rng in
    match Lp.Simplex.solve ~kernel:`Sparse spec, Lp.Simplex.solve ~kernel:`Sparse spec with
    | Lp.Simplex.Optimal a, Lp.Simplex.Optimal b ->
      if a.x <> b.x then Alcotest.fail "identical solves must return identical bits";
      if not (Float.equal a.objective b.objective) then
        Alcotest.fail "identical solves must return identical objectives"
    | _ -> Alcotest.fail "expected optimal"
  done

(* {1 Torn and degenerate inputs} *)

let test_empty_column () =
  (* A variable with an all-zero column only moves between its own
     bounds (a bound flip in the ratio test).  With positive reduced
     cost it must land on its upper bound. *)
  let spec =
    {
      Lp.Simplex.n_rows = 1;
      cols = [| []; [ (0, 1.) ]; [ (0, 1.) ] |];
      rhs = [| 4. |];
      obj = [| 2.; 1.; 0. |];
      lo = [| 0.; 0.; 0. |];
      up = [| 3.; infinity; infinity |];
    }
  in
  match Lp.Simplex.solve spec with
  | Lp.Simplex.Optimal { x; objective } ->
    check_float "empty column at its upper bound" 3. x.(0);
    check_float "objective" 10. objective
  | _ -> Alcotest.fail "expected optimal"

let test_duplicate_rows () =
  (* Byte-identical duplicated rows make every basis containing both
     slacks singular; the solver must still reach the optimum. *)
  let p = Lp.Problem.make ~n_vars:2 () in
  Lp.Problem.set_bounds p 0 0. infinity;
  Lp.Problem.set_bounds p 1 0. infinity;
  Lp.Problem.set_objective p 0 3.;
  Lp.Problem.set_objective p 1 2.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 4.;
  Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 4.;
  Lp.Problem.add_row p [ (0, 1.); (1, 3.) ] Lp.Problem.Le 6.;
  let _rx, robj = solve_expect_optimal p in
  check_float "objective with duplicate rows" 12. robj

let test_infeasible_after_warm_reject () =
  (* A basis from a neighboring LP whose vertex is infeasible under the
     new data must be rejected (counted), and the cold fallback must
     still prove infeasibility. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let spec rhs =
        {
          Lp.Simplex.n_rows = 1;
          cols = [| [ (0, 1.) ] |];
          rhs = [| rhs |];
          obj = [| 1. |];
          lo = [| 0. |];
          up = [| 5. |];
        }
      in
      let basis =
        match Lp.Simplex.solve_basis (spec 1.) with
        | Lp.Simplex.Optimal _, Some b -> b
        | _ -> Alcotest.fail "seed solve must be optimal with a basis"
      in
      let rejects = Obs.Metrics.counter "simplex.warm_rejects" in
      let before = Obs.Metrics.counter_value rejects in
      (match Lp.Simplex.solve ~basis (spec 10.) with
      | Lp.Simplex.Infeasible -> ()
      | _ -> Alcotest.fail "x = 10 with up = 5 must be infeasible");
      Alcotest.(check int) "warm start rejected" (before + 1)
        (Obs.Metrics.counter_value rejects))

(* {1 Forrest–Tomlin update oracle} *)

(* Random nonsingular square sparse columns: a dominant diagonal entry
   plus a few off-diagonal ones. *)
let random_square_cols rng m =
  Array.init m (fun k ->
      let sign = if Numerics.Rng.uniform rng 0. 1. < 0.5 then 1. else -1. in
      let d = sign *. (2. +. Numerics.Rng.uniform rng 0. 3.) in
      let off =
        List.init m Fun.id
        |> List.filter_map (fun i ->
               if i <> k && Numerics.Rng.uniform rng 0. 1. < 0.3 then
                 Some (i, Numerics.Rng.uniform rng (-1.) 1.)
               else None)
      in
      (k, d) :: off)

let random_replacement_col rng m q =
  let sign = if Numerics.Rng.uniform rng 0. 1. < 0.5 then 1. else -1. in
  let d = sign *. (2. +. Numerics.Rng.uniform rng 0. 3.) in
  let off =
    List.init m Fun.id
    |> List.filter_map (fun i ->
           if i <> q && Numerics.Rng.uniform rng 0. 1. < 0.3 then
             Some (i, Numerics.Rng.uniform rng (-1.) 1.)
           else None)
  in
  (q, d) :: off

let test_ft_vs_refactor_property () =
  (* Long pivot sequences: after every FT update, ftran and btran must
     agree with a fresh factorization of the current columns (and with
     the product-form eta file maintained in parallel). *)
  let rng = Numerics.Rng.create 4242 in
  for _ = 1 to 6 do
    let m = 5 + Numerics.Rng.int rng 8 in
    let cols = random_square_cols rng m in
    let ft = Lp.Basis.factor ~update:`ForrestTomlin (Array.copy cols) in
    let eta = Lp.Basis.factor ~update:`Eta (Array.copy cols) in
    for _ = 1 to 30 do
      let q = Numerics.Rng.int rng m in
      let newcol = random_replacement_col rng m q in
      let w_ft = Lp.Basis.ftran_col ft newcol in
      if Float.abs w_ft.(q) > 1e-6 then begin
        let w_eta = Lp.Basis.ftran_col eta newcol in
        Lp.Basis.update ft ~row:q ~col:newcol w_ft;
        Lp.Basis.update eta ~row:q ~col:newcol w_eta;
        cols.(q) <- newcol;
        let fresh = Lp.Basis.factor (Array.copy cols) in
        let rhs = Array.init m (fun _ -> Numerics.Rng.uniform rng (-2.) 2.) in
        let xf = Lp.Basis.ftran ft rhs in
        let xr = Lp.Basis.ftran fresh rhs in
        let xe = Lp.Basis.ftran eta rhs in
        Array.iteri (fun i v -> check_float ~tol:1e-6 "ftran FT vs fresh" v xf.(i)) xr;
        Array.iteri (fun i v -> check_float ~tol:1e-6 "ftran FT vs eta" v xf.(i)) xe;
        let cb = Array.init m (fun _ -> Numerics.Rng.uniform rng (-2.) 2.) in
        let yf = Lp.Basis.btran ft cb in
        let yr = Lp.Basis.btran fresh cb in
        Array.iteri (fun i v -> check_float ~tol:1e-6 "btran FT vs fresh" v yf.(i)) yr
      end
    done;
    (* The 30-update sequence blows through the 2√m cap, so the advisory
       trigger must have fired along the way. *)
    Alcotest.(check bool) "refactor advised after a long sequence" true
      (Lp.Basis.should_refactor ft)
  done

let test_ft_vs_eta_objective_bits () =
  (* The terminal polish refactorizes from the final basis before
     extracting the solution, so FT and eta solves that walk the same
     pivot path return bit-identical objectives — the FT-vs-refactorize
     oracle at the solve level. *)
  let rng = Numerics.Rng.create 808 in
  for _ = 1 to 30 do
    let spec = random_spec rng in
    match
      (Lp.Simplex.solve ~update:`ForrestTomlin spec, Lp.Simplex.solve ~update:`Eta spec)
    with
    | Lp.Simplex.Optimal a, Lp.Simplex.Optimal b ->
      if not (Float.equal a.objective b.objective) then
        Alcotest.failf "FT %.17g <> eta %.17g" a.objective b.objective
    | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible
    | Lp.Simplex.Unbounded, Lp.Simplex.Unbounded -> ()
    | _ -> Alcotest.fail "FT and eta disagree on the outcome"
  done

let test_pricing_rules_agree () =
  let rng = Numerics.Rng.create 606 in
  for _ = 1 to 20 do
    let spec = random_spec rng in
    match
      ( Lp.Simplex.solve ~pricing:`Dantzig spec,
        Lp.Simplex.solve ~pricing:`SteepestEdge spec,
        Lp.Simplex.solve ~pricing:`Partial spec )
    with
    | Lp.Simplex.Optimal a, Lp.Simplex.Optimal b, Lp.Simplex.Optimal c ->
      check_float ~tol:1e-6 "steepest-edge = dantzig" a.objective b.objective;
      check_float ~tol:1e-6 "partial = dantzig" a.objective c.objective
    | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible, Lp.Simplex.Infeasible
    | Lp.Simplex.Unbounded, Lp.Simplex.Unbounded, Lp.Simplex.Unbounded -> ()
    | _ -> Alcotest.fail "pricing rules disagree on the outcome"
  done

(* {1 Dual simplex: bound-flip warm starts} *)

let test_dual_bound_flip_roundtrip () =
  (* Tighten bounds below the optimum, repair with the dual simplex from
     the parent basis, then relax back — both directions must match the
     cold solve, and real dual pivots must have happened somewhere in
     the battery. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let rng = Numerics.Rng.create 31337 in
      let dual_pivots = Obs.Metrics.counter "simplex.dual_pivots" in
      for _ = 1 to 25 do
        let spec = random_spec rng in
        match Lp.Simplex.solve_basis spec with
        | Lp.Simplex.Optimal { x; objective = obj0 }, Some b ->
          let up' = Array.copy spec.up in
          let changed = ref false in
          Array.iteri
            (fun j xj ->
              if xj > 1. && up'.(j) < infinity then begin
                up'.(j) <- xj /. 2.;
                changed := true
              end)
            x;
          if !changed then begin
            let spec' = { spec with Lp.Simplex.up = up' } in
            let cold = Lp.Simplex.solve spec' in
            let warm, b' = Lp.Simplex.solve_dual_basis ~basis:b spec' in
            (match (cold, warm) with
            | Lp.Simplex.Optimal c, Lp.Simplex.Optimal w ->
              check_float ~tol:1e-6 "dual tighten = cold" c.objective w.objective
            | Lp.Simplex.Infeasible, Lp.Simplex.Infeasible -> ()
            | _ -> Alcotest.fail "tightened outcome mismatch");
            match b' with
            | Some b2 -> (
              match Lp.Simplex.solve_dual ~basis:b2 spec with
              | Lp.Simplex.Optimal r ->
                check_float ~tol:1e-6 "dual relax = original" obj0 r.objective
              | _ -> Alcotest.fail "relaxing bounds cannot lose feasibility")
            | None -> ()
          end
        | _ -> ()
      done;
      Alcotest.(check bool) "dual iterations actually ran" true
        (Obs.Metrics.counter_value dual_pivots > 0))

let test_dual_empty_and_degenerate () =
  (* Empty column: only its own bounds move it; tightening the bound on
     a nonbasic empty column must snap it and leave the rest alone. *)
  let spec =
    {
      Lp.Simplex.n_rows = 1;
      cols = [| []; [ (0, 1.) ]; [ (0, 1.) ] |];
      rhs = [| 4. |];
      obj = [| 2.; 1.; 0. |];
      lo = [| 0.; 0.; 0. |];
      up = [| 3.; infinity; infinity |];
    }
  in
  (match Lp.Simplex.solve_basis spec with
  | Lp.Simplex.Optimal { objective; _ }, Some b ->
    check_float "empty-column optimum" 10. objective;
    let spec' = { spec with Lp.Simplex.up = [| 1.; infinity; infinity |] } in
    (match Lp.Simplex.solve_dual ~basis:b spec' with
    | Lp.Simplex.Optimal o -> check_float "empty-column dual tighten" 6. o.objective
    | _ -> Alcotest.fail "expected optimal")
  | _ -> Alcotest.fail "expected optimal with a basis");
  (* Degenerate vertex: two rows bind the same variable, so the repair
     pivot is degenerate on one of them. *)
  let spec2 =
    {
      Lp.Simplex.n_rows = 2;
      cols = [| [ (0, 1.); (1, 1.) ]; [ (0, 1.) ]; [ (1, 1.) ] |];
      rhs = [| 4.; 4. |];
      obj = [| 1.; 0.; 0. |];
      lo = [| 0.; 0.; 0. |];
      up = [| 6.; infinity; infinity |];
    }
  in
  match Lp.Simplex.solve_basis spec2 with
  | Lp.Simplex.Optimal { objective; _ }, Some b2 ->
    check_float "degenerate optimum" 4. objective;
    let spec2' = { spec2 with Lp.Simplex.up = [| 2.; infinity; infinity |] } in
    (match Lp.Simplex.solve_dual ~basis:b2 spec2' with
    | Lp.Simplex.Optimal o -> check_float "degenerate dual tighten" 2. o.objective
    | _ -> Alcotest.fail "expected optimal")
  | _ -> Alcotest.fail "expected optimal with a basis"

let test_dual_infeasible_fallback () =
  (* A bounds-only change that empties the feasible region: the dual
     loop derives the infeasibility certificate (dual ray) on fresh
     factors and returns Infeasible directly — the clear violation needs
     no cold-primal confirmation, so the fallback counter stays put. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let spec up =
        {
          Lp.Simplex.n_rows = 1;
          cols = [| [ (0, 1.) ] |];
          rhs = [| 1. |];
          obj = [| 1. |];
          lo = [| 0. |];
          up = [| up |];
        }
      in
      let b =
        match Lp.Simplex.solve_basis (spec 5.) with
        | Lp.Simplex.Optimal _, Some b -> b
        | _ -> Alcotest.fail "seed solve must be optimal with a basis"
      in
      let fallbacks = Obs.Metrics.counter "simplex.dual_fallbacks" in
      let dual_solves = Obs.Metrics.counter "simplex.dual_solves" in
      let before_fb = Obs.Metrics.counter_value fallbacks in
      let before_ds = Obs.Metrics.counter_value dual_solves in
      (match Lp.Simplex.solve_dual ~basis:b (spec 0.5) with
      | Lp.Simplex.Infeasible -> ()
      | _ -> Alcotest.fail "x = 1 with up = 0.5 must be infeasible");
      Alcotest.(check int) "the dual path ran" (before_ds + 1)
        (Obs.Metrics.counter_value dual_solves);
      Alcotest.(check int) "certified without a primal fallback" before_fb
        (Obs.Metrics.counter_value fallbacks))

let test_warm_reject_reasons () =
  (* Every reject path must leave its reason in the per-reason counters. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let c name = Obs.Metrics.counter_value (Obs.Metrics.counter name) in
      let spec1 rhs =
        {
          Lp.Simplex.n_rows = 1;
          cols = [| [ (0, 1.) ] |];
          rhs = [| rhs |];
          obj = [| 1. |];
          lo = [| 0. |];
          up = [| 5. |];
        }
      in
      let b1 =
        match Lp.Simplex.solve_basis (spec1 1.) with
        | Lp.Simplex.Optimal _, Some b -> b
        | _ -> Alcotest.fail "seed solve must be optimal with a basis"
      in
      (* Shape: basis from a 1-variable LP against a 2-variable LP. *)
      let spec2 =
        {
          Lp.Simplex.n_rows = 1;
          cols = [| [ (0, 1.) ]; [ (0, 1.) ] |];
          rhs = [| 1. |];
          obj = [| 1.; 0. |];
          lo = [| 0.; 0. |];
          up = [| 5.; 5. |];
        }
      in
      (match Lp.Simplex.solve ~basis:b1 spec2 with
      | Lp.Simplex.Optimal _ -> ()
      | _ -> Alcotest.fail "cold fallback must still solve");
      Alcotest.(check int) "shape reject reason" 1 (c "simplex.warm_rejects_shape");
      (* Primal-infeasible vertex on the primal warm path. *)
      (match Lp.Simplex.solve ~basis:b1 (spec1 10.) with
      | Lp.Simplex.Infeasible -> ()
      | _ -> Alcotest.fail "rhs = 10 must be infeasible");
      Alcotest.(check int) "primal-infeasible reject reason" 1
        (c "simplex.warm_rejects_primal_infeasible");
      (* Dual-infeasible (and primal-infeasible) vertex on the dual path:
         new objective makes a nonbasic price favorably, new rhs pushes
         the basic out of its bounds. *)
      let spec3 =
        {
          Lp.Simplex.n_rows = 1;
          cols = [| [ (0, 1.) ]; [ (0, 1.) ] |];
          rhs = [| 1. |];
          obj = [| 1.; 0. |];
          lo = [| 0.; 0. |];
          up = [| 5.; 5. |];
        }
      in
      let b3 =
        match Lp.Simplex.solve_basis spec3 with
        | Lp.Simplex.Optimal _, Some b -> b
        | _ -> Alcotest.fail "seed solve must be optimal with a basis"
      in
      let spec3' = { spec3 with Lp.Simplex.rhs = [| 10. |]; obj = [| 1.; 2. |] } in
      (match Lp.Simplex.solve_dual ~basis:b3 spec3' with
      | Lp.Simplex.Optimal { objective; _ } ->
        check_float ~tol:1e-6 "cold fallback optimum" 15. objective
      | _ -> Alcotest.fail "x0 = x1 = 5 solves the fallback LP");
      Alcotest.(check int) "dual-infeasible reject reason" 1
        (c "simplex.warm_rejects_dual_infeasible");
      Alcotest.(check int) "total rejects = sum of reasons" 3 (c "simplex.warm_rejects"))

let test_beale_cycling () =
  (* Beale's classic cycling example: Dantzig pricing with naive
     tie-breaks can loop on this degenerate LP forever.  The
     degenerate-streak Bland fallback must terminate it at the true
     optimum 1/20. *)
  let p = Lp.Problem.make ~n_vars:4 () in
  for j = 0 to 3 do
    Lp.Problem.set_bounds p j 0. infinity
  done;
  Lp.Problem.set_objective p 0 0.75;
  Lp.Problem.set_objective p 1 (-150.);
  Lp.Problem.set_objective p 2 0.02;
  Lp.Problem.set_objective p 3 (-6.);
  Lp.Problem.add_row p [ (0, 0.25); (1, -60.); (2, -0.04); (3, 9.) ] Lp.Problem.Le 0.;
  Lp.Problem.add_row p [ (0, 0.5); (1, -90.); (2, -0.02); (3, 3.) ] Lp.Problem.Le 0.;
  Lp.Problem.add_row p [ (2, 1.) ] Lp.Problem.Le 1.;
  (* All three pricing rules must terminate at the true optimum — the
     degenerate-streak Bland fallback backstops each of them. *)
  List.iter
    (fun pricing ->
      match Lp.Problem.solve ~pricing p with
      | Lp.Problem.Optimal { objective; _ } ->
        check_float ~tol:1e-9 "Beale optimum" 0.05 objective
      | _ -> Alcotest.fail "Beale must be optimal")
    [ `Dantzig; `SteepestEdge; `Partial ]

let test_solve_telemetry () =
  (* With metrics on, a solve shows up in the simplex.* series: solve and
     pivot counters move and the per-solve pivot histogram records one
     observation. *)
  Obs.Metrics.reset ();
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Metrics.set_enabled false;
      Obs.Metrics.reset ())
    (fun () ->
      let solves = Obs.Metrics.counter "simplex.solves" in
      let pivots = Obs.Metrics.counter "simplex.pivots" in
      let per_solve =
        (* same buckets Simplex registered with: lookup, not re-definition *)
        Obs.Metrics.histogram "simplex.pivots_per_solve"
          ~buckets:[| 1.; 5.; 10.; 25.; 50.; 100.; 250.; 500.; 1000.; 5000. |]
      in
      let p = Lp.Problem.make ~n_vars:2 () in
      Lp.Problem.set_bounds p 0 0. infinity;
      Lp.Problem.set_bounds p 1 0. infinity;
      Lp.Problem.set_objective p 0 3.;
      Lp.Problem.set_objective p 1 2.;
      Lp.Problem.add_row p [ (0, 1.); (1, 1.) ] Lp.Problem.Le 4.;
      Lp.Problem.add_row p [ (0, 1.); (1, 3.) ] Lp.Problem.Le 6.;
      let _ = solve_expect_optimal p in
      Alcotest.(check int) "one solve counted" 1 (Obs.Metrics.counter_value solves);
      Alcotest.(check bool) "pivots counted" true (Obs.Metrics.counter_value pivots > 0);
      Alcotest.(check int) "one histogram observation" 1
        (Obs.Metrics.histogram_count per_solve))

let () =
  Alcotest.run "lp"
    [
      ( "simplex",
        [
          Alcotest.test_case "basic maximization" `Quick test_basic_max;
          Alcotest.test_case "basic minimization" `Quick test_basic_min;
          Alcotest.test_case "equality + negative bounds" `Quick test_equality_negative_bounds;
          Alcotest.test_case "upper bounds bind" `Quick test_upper_bounds_bind;
          Alcotest.test_case "infeasible detected" `Quick test_infeasible;
          Alcotest.test_case "unbounded detected" `Quick test_unbounded;
          Alcotest.test_case "free variable" `Quick test_free_variable;
          Alcotest.test_case "degenerate vertex" `Quick test_degenerate;
          Alcotest.test_case "fixed variable" `Quick test_fixed_variable;
          Alcotest.test_case "diet problem" `Quick test_diet_problem;
          Alcotest.test_case "random LPs stay feasible" `Quick test_larger_random_consistency;
          Alcotest.test_case "solve telemetry" `Quick test_solve_telemetry;
        ] );
      ( "kernels",
        [
          Alcotest.test_case "sparse vs dense oracle" `Quick test_sparse_vs_dense_oracle;
          Alcotest.test_case "cross-kernel warm start" `Quick test_cross_kernel_warm_start;
          Alcotest.test_case "sparse deterministic" `Quick test_sparse_deterministic;
          Alcotest.test_case "empty column" `Quick test_empty_column;
          Alcotest.test_case "duplicate rows" `Quick test_duplicate_rows;
          Alcotest.test_case "infeasible after warm reject" `Quick
            test_infeasible_after_warm_reject;
          Alcotest.test_case "Beale anti-cycling, all pricings" `Quick test_beale_cycling;
          Alcotest.test_case "FT updates vs fresh refactorization" `Quick
            test_ft_vs_refactor_property;
          Alcotest.test_case "FT vs eta bit-identical objectives" `Quick
            test_ft_vs_eta_objective_bits;
          Alcotest.test_case "pricing rules agree" `Quick test_pricing_rules_agree;
        ] );
      ( "dual",
        [
          Alcotest.test_case "bound-flip round trips" `Quick test_dual_bound_flip_roundtrip;
          Alcotest.test_case "empty column and degenerate rows" `Quick
            test_dual_empty_and_degenerate;
          Alcotest.test_case "infeasible certified by dual ray" `Quick
            test_dual_infeasible_fallback;
          Alcotest.test_case "warm reject reasons" `Quick test_warm_reject_reasons;
        ] );
      ("properties", [ QCheck_alcotest.to_alcotest prop_simplex_weak_duality ]);
    ]
