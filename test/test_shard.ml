(* Tests for the multi-process sharded archipelago: wire-format framing
   (including frames torn at every byte boundary), supervised restarts
   after injected SIGKILLs, hard preemption of wedged workers, retry
   budget exhaustion degrading the partition, and the headline
   determinism claim — fronts bit-for-bit identical to the in-process
   archipelago at any shard count, crashes or not. *)

module A = Pmo2.Archipelago
module Sup = Shard.Supervisor

let zdt1 n = Moo.Benchmarks.zdt1 ~n

(* Bit-for-bit front identity: decision vector, objectives and violation
   of every member, order-independent. *)
let key (s : Moo.Solution.t) =
  (Array.to_list s.Moo.Solution.x, Array.to_list s.Moo.Solution.f, s.Moo.Solution.v)

let front_key (r : A.result) = List.sort compare (List.map key r.A.front)

let island_keys (r : A.result) =
  List.map (fun front -> List.sort compare (List.map key front)) r.A.per_island

let with_temp_file f =
  let path = Filename.temp_file "robustpath" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

(* Four islands so 1/2/4-shard partitions are all non-trivial. *)
let quad_config =
  {
    A.default_config with
    A.n_islands = 4;
    migration_period = 5;
    nsga2 = { Ea.Nsga2.default_config with Ea.Nsga2.pop_size = 16 };
  }

(* Supervision tuned for tests: fast backoff, CI-safe deadlines. *)
let sup_config =
  {
    Sup.default with
    Sup.heartbeat_timeout = 5.;
    epoch_deadline = 30.;
    backoff_base = 0.002;
    backoff_cap = 0.02;
  }

(* {1 Versioned magic and frame codec} *)

let test_versioned_magic () =
  let base = "robustpath-test" in
  let m = Runtime.Checkpoint.versioned_magic ~base ~version:3 in
  Alcotest.(check string) "shape" "robustpath-test v3" m;
  Alcotest.(check (option int)) "roundtrip" (Some 3)
    (Runtime.Checkpoint.version_of_magic ~base m);
  Alcotest.(check (option int)) "foreign base" None
    (Runtime.Checkpoint.version_of_magic ~base:"other" m);
  Alcotest.(check (option int)) "junk version" None
    (Runtime.Checkpoint.version_of_magic ~base "robustpath-test vX");
  Alcotest.(check (option int)) "no version" None
    (Runtime.Checkpoint.version_of_magic ~base base);
  Alcotest.(check bool) "version < 1 refused" true
    (match Runtime.Checkpoint.versioned_magic ~base ~version:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_frame_roundtrip () =
  let magic = "frame-test v1" in
  let value = ([ 1; 2; 3 ], "payload", 3.14) in
  let frame = Runtime.Checkpoint.Frame.encode ~magic value in
  Alcotest.(check bool) "roundtrips" true
    (Runtime.Checkpoint.Frame.decode ~magic frame = value);
  Alcotest.(check string) "magic peek" magic (Runtime.Checkpoint.Frame.magic_of frame);
  Alcotest.(check bool) "wrong magic rejected" true
    (match Runtime.Checkpoint.Frame.decode ~magic:"frame-test v2" frame with
    | exception Runtime.Checkpoint.Corrupt _ -> true
    | _ -> false);
  (* Flip one payload byte: the CRC must catch it. *)
  let tampered = Bytes.of_string frame in
  let last = Bytes.length tampered - 1 in
  Bytes.set tampered last (Char.chr (Char.code (Bytes.get tampered last) lxor 0x01));
  Alcotest.(check bool) "bit flip rejected" true
    (match Runtime.Checkpoint.Frame.decode ~magic (Bytes.to_string tampered) with
    | exception Runtime.Checkpoint.Corrupt _ -> true
    | _ -> false)

(* A worker SIGKILLed mid-write can tear the wire frame at any byte
   boundary; every prefix must read back as a clean close (nothing sent)
   or a detected corruption — never a misparse. *)
let test_wire_torn_at_every_byte () =
  let reply = Shard.Wire.Injected { in_epoch = 7; in_obs = None } in
  let bytes = Shard.Wire.to_bytes reply in
  let n = String.length bytes in
  for cut = 0 to n - 1 do
    let r, w = Unix.pipe () in
    Shard.Wire.write_raw w (String.sub bytes 0 cut);
    Unix.close w;
    (match Shard.Wire.recv_reply r with
    | _ -> Alcotest.failf "torn frame of %d/%d bytes decoded" cut n
    | exception Shard.Wire.Closed ->
      if cut <> 0 then Alcotest.failf "cut at %d read as clean close" cut
    | exception Runtime.Checkpoint.Corrupt _ ->
      if cut = 0 then Alcotest.failf "empty pipe read as corrupt");
    Unix.close r
  done;
  (* The untorn frame decodes to the original. *)
  let r, w = Unix.pipe () in
  Shard.Wire.write_raw w bytes;
  Unix.close w;
  Alcotest.(check bool) "full frame decodes" true (Shard.Wire.recv_reply r = reply);
  Unix.close r

(* {1 Process-fault specs} *)

let test_parse_kill_spec () =
  let pf = Runtime.Fault.parse_kill_spec "1:2" in
  Alcotest.(check int) "shard" 1 pf.Runtime.Fault.pf_shard;
  Alcotest.(check int) "epoch" 2 pf.Runtime.Fault.pf_epoch;
  Alcotest.(check int) "times defaults to 1" 1 pf.Runtime.Fault.pf_times;
  Alcotest.(check bool) "mode defaults to kill" true (pf.Runtime.Fault.pf_mode = Runtime.Fault.Kill);
  let pf = Runtime.Fault.parse_kill_spec "0:3:2:wedge" in
  Alcotest.(check int) "times" 2 pf.Runtime.Fault.pf_times;
  Alcotest.(check bool) "wedge mode" true (pf.Runtime.Fault.pf_mode = Runtime.Fault.Wedge);
  List.iter
    (fun spec ->
      Alcotest.(check bool) (spec ^ " refused") true
        (match Runtime.Fault.parse_kill_spec spec with
        | exception Invalid_argument _ -> true
        | _ -> false))
    [ ""; "1"; "1:abc"; "1:2:3:flood"; "-1:2"; "1:0"; "1:2:0" ]

let test_should_fault_incarnation_gate () =
  let pf = Runtime.Fault.parse_kill_spec "1:2:2" in
  let f ~shard ~epoch ~incarnation =
    Runtime.Fault.should_fault (Some pf) ~shard ~epoch ~incarnation
  in
  Alcotest.(check bool) "fires for incarnation 0" true
    (f ~shard:1 ~epoch:2 ~incarnation:0 = Some Runtime.Fault.Kill);
  Alcotest.(check bool) "fires for incarnation 1" true
    (f ~shard:1 ~epoch:2 ~incarnation:1 = Some Runtime.Fault.Kill);
  Alcotest.(check bool) "exhausted after pf_times" true (f ~shard:1 ~epoch:2 ~incarnation:2 = None);
  Alcotest.(check bool) "wrong shard" true (f ~shard:0 ~epoch:2 ~incarnation:0 = None);
  Alcotest.(check bool) "wrong epoch" true (f ~shard:1 ~epoch:1 ~incarnation:0 = None);
  Alcotest.(check bool) "no spec, no fault" true
    (Runtime.Fault.should_fault None ~shard:1 ~epoch:2 ~incarnation:0 = None)

(* {1 Front identity at any shard count} *)

let test_front_identity_1_2_4_shards () =
  let problem = zdt1 6 in
  let baseline = A.run ~seed:11 ~generations:20 problem quad_config in
  List.iter
    (fun shards ->
      let r, stats =
        Sup.run ~seed:11 ~config:{ sup_config with Sup.shards } ~generations:20 problem
          quad_config
      in
      let label = Printf.sprintf "%d shard(s)" shards in
      Alcotest.(check bool) (label ^ ": front bit-identical") true
        (front_key r = front_key baseline);
      Alcotest.(check bool) (label ^ ": island fronts identical") true
        (island_keys r = island_keys baseline);
      Alcotest.(check int) (label ^ ": evaluations exact") baseline.A.evaluations
        r.A.evaluations;
      Alcotest.(check int) (label ^ ": partition size") shards stats.Sup.shards_used;
      Alcotest.(check int) (label ^ ": no restarts") 0 stats.Sup.restarts)
    [ 1; 2; 4 ]

let test_shards_clamped_to_islands () =
  let problem = zdt1 6 in
  let baseline = A.run ~seed:13 ~generations:10 problem quad_config in
  let r, stats =
    Sup.run ~seed:13 ~config:{ sup_config with Sup.shards = 9 } ~generations:10 problem
      quad_config
  in
  Alcotest.(check int) "clamped to island count" 4 stats.Sup.shards_used;
  Alcotest.(check int) "one process per used shard" 4 stats.Sup.spawns;
  Alcotest.(check bool) "front bit-identical" true (front_key r = front_key baseline)

(* {1 Supervised restart after an injected SIGKILL} *)

let test_kill_mid_migration_supervised_restart () =
  let problem = zdt1 6 in
  let baseline = A.run ~seed:17 ~generations:20 problem quad_config in
  (* Shard 1 SIGKILLs itself at epoch 2, tearing its Stepped frame on
     the pipe; the supervisor must restart it and replay the epoch. *)
  let fault = Runtime.Fault.parse_kill_spec "1:2:1:kill" in
  let r, stats =
    Sup.run ~seed:17
      ~config:{ sup_config with Sup.shards = 2; fault = Some fault }
      ~generations:20 problem quad_config
  in
  Alcotest.(check bool) "restarted at least once" true (stats.Sup.restarts >= 1);
  Alcotest.(check int) "no shard lost" 0 stats.Sup.lost;
  Alcotest.(check int) "still two shards" 2 stats.Sup.shards_used;
  Alcotest.(check bool) "restart latency recorded" true
    (List.length stats.Sup.restart_ms = stats.Sup.restarts);
  Alcotest.(check bool) "front bit-identical across the crash" true
    (front_key r = front_key baseline);
  Alcotest.(check int) "evaluations exact across the crash" baseline.A.evaluations
    r.A.evaluations

let test_wedged_worker_hard_preempted () =
  let problem = zdt1 6 in
  let baseline = A.run ~seed:19 ~generations:15 problem quad_config in
  (* Shard 0 wedges at epoch 1: pipe open, no frames.  Cooperative
     deadlines cannot clear this; the supervisor's heartbeat timeout
     must SIGKILL it. *)
  let fault = Runtime.Fault.parse_kill_spec "0:1:1:wedge" in
  let r, stats =
    Sup.run ~seed:19
      ~config:{ sup_config with Sup.shards = 2; heartbeat_timeout = 0.4; fault = Some fault }
      ~generations:15 problem quad_config
  in
  Alcotest.(check bool) "hard preemption fired" true (stats.Sup.kills >= 1);
  Alcotest.(check bool) "restarted" true (stats.Sup.restarts >= 1);
  Alcotest.(check bool) "front bit-identical after preemption" true
    (front_key r = front_key baseline)

let test_retry_budget_exhaustion_degrades () =
  let problem = zdt1 6 in
  let baseline = A.run ~seed:23 ~generations:15 problem quad_config in
  (* Shard 0 dies at epoch 1 in every incarnation; with a budget of one
     restart per shard the partition degrades 2 -> 1 -> in-process. *)
  let fault = Runtime.Fault.parse_kill_spec "0:1:99:kill" in
  let r, stats =
    Sup.run ~seed:23
      ~config:{ sup_config with Sup.shards = 2; retry_budget = 1; fault = Some fault }
      ~generations:15 problem quad_config
  in
  Alcotest.(check bool) "shards were lost" true (stats.Sup.lost >= 1);
  Alcotest.(check int) "fully degraded to in-process" 0 stats.Sup.shards_used;
  Alcotest.(check bool) "front bit-identical after degradation" true
    (front_key r = front_key baseline);
  Alcotest.(check int) "evaluations exact after degradation" baseline.A.evaluations
    r.A.evaluations

(* {1 Telemetry exactness across processes} *)

let test_guard_stats_exact_across_shards () =
  let make_problem () =
    Runtime.Fault.wrap_problem
      { Runtime.Fault.default with Runtime.Fault.fraction = 0.1; modes = [ Runtime.Fault.Raise ] }
      (zdt1 6)
  in
  let cfg = { quad_config with A.guard_penalty = Some 1e9 } in
  let baseline = A.run ~seed:29 ~generations:15 (make_problem ()) cfg in
  let r, _stats =
    Sup.run ~seed:29 ~config:{ sup_config with Sup.shards = 2 } ~generations:15
      (make_problem ()) cfg
  in
  Alcotest.(check bool) "guards saw failures" true
    (Array.exists (fun g -> Runtime.Guard.failures g > 0) baseline.A.guard_stats);
  Alcotest.(check bool) "guard stats identical across processes" true
    (baseline.A.guard_stats = r.A.guard_stats);
  Alcotest.(check bool) "front bit-identical under guarded faults" true
    (front_key r = front_key baseline)

(* {1 Merged observability: one trace, exact roll-ups, flight recorder} *)

let with_obs f =
  Obs.Span.reset ();
  Obs.Metrics.reset ();
  Obs.Span.set_enabled true;
  Obs.Metrics.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Obs.Span.set_enabled false;
      Obs.Metrics.set_enabled false;
      Obs.Span.reset ();
      Obs.Metrics.reset ())
    f

(* The current counters, minus the shard.* supervision family (which has
   no in-process counterpart by construction). *)
let counters_sans_shard () =
  match Obs.Json.member "counters" (Obs.Metrics.snapshot ()) with
  | Some (Obs.Json.Obj kvs) ->
    List.filter (fun (k, _) -> not (String.starts_with ~prefix:"shard." k)) kvs
  | _ -> []

let test_merged_rollups_and_trace () =
  let make_problem () =
    Runtime.Fault.wrap_problem
      { Runtime.Fault.default with Runtime.Fault.fraction = 0.1; modes = [ Runtime.Fault.Raise ] }
      (zdt1 6)
  in
  let cfg = { quad_config with A.guard_penalty = Some 1e9 } in
  let baseline =
    with_obs (fun () ->
        let _ = A.run ~seed:41 ~generations:12 (make_problem ()) cfg in
        counters_sans_shard ())
  in
  let sharded, events =
    with_obs (fun () ->
        (* A kill forces a replayed epoch: only committed flushes may be
           absorbed, or the replay double-counts. *)
        let fault = Runtime.Fault.parse_kill_spec "1:2:1:kill" in
        let _r, stats =
          Sup.run ~seed:41
            ~config:{ sup_config with Sup.shards = 2; fault = Some fault }
            ~generations:12 (make_problem ()) cfg
        in
        Alcotest.(check bool) "kill replayed" true (stats.Sup.restarts >= 1);
        (counters_sans_shard (), Obs.Span.events ()))
  in
  Alcotest.(check bool) "baseline saw guarded work" true
    (List.exists (fun (k, v) -> k = "guard.evaluations" && v <> Obs.Json.Int 0) baseline);
  Alcotest.(check bool) "counters exact modulo shard.*, kill included" true
    (sharded = baseline);
  (* One Perfetto lane per process: supervisor plus both shards. *)
  let pids =
    List.sort_uniq compare (List.map (fun (e : Obs.Span.event) -> e.Obs.Span.pid) events)
  in
  Alcotest.(check (list int)) "one lane per process" [ 0; 1; 2 ] pids;
  List.iter
    (fun p ->
      let ids =
        List.filter_map
          (fun (e : Obs.Span.event) -> if e.Obs.Span.pid = p then Some e.Obs.Span.id else None)
          events
      in
      Alcotest.(check bool)
        (Printf.sprintf "lane %d span ids unique and ordered" p)
        true
        (List.sort_uniq compare ids = ids))
    pids;
  Alcotest.(check bool) "worker lanes carry worker.step spans" true
    (List.exists
       (fun (e : Obs.Span.event) -> e.Obs.Span.pid > 0 && e.Obs.Span.name = "worker.step")
       events)

let test_flight_recorder_survives_kill () =
  let problem = zdt1 6 in
  let prefix = Filename.temp_file "robustpath" ".flight" in
  let candidates =
    (prefix ^ ".supervisor.ring")
    :: List.concat_map
         (fun shard ->
           List.map
             (fun incarnation -> Shard.Worker.ring_path ~prefix ~shard ~incarnation)
             [ 0; 1; 2 ])
         [ 0; 1 ]
  in
  Fun.protect
    ~finally:(fun () ->
      Obs.Ring.reset ();
      List.iter (fun p -> try Sys.remove p with Sys_error _ -> ()) (prefix :: candidates))
    (fun () ->
      let fault = Runtime.Fault.parse_kill_spec "1:2:1:kill" in
      let _r, stats =
        Sup.run ~seed:43
          ~config:
            { sup_config with Sup.shards = 2; fault = Some fault; ring_prefix = Some prefix }
          ~generations:12 problem quad_config
      in
      Alcotest.(check bool) "restart happened" true (stats.Sup.restarts >= 1);
      (* The SIGKILLed incarnation (shard 1, incarnation 0) wrote its
         events through the mmap as they happened: the file on disk IS
         the post-mortem, no exit handler involved. *)
      let path = Shard.Worker.ring_path ~prefix ~shard:1 ~incarnation:0 in
      Alcotest.(check bool) "ring file recognized" true (Obs.Ring.is_ring_file ~path);
      let d = Obs.Ring.read ~path in
      Alcotest.(check int) "lane of shard 1" 2 d.Obs.Ring.d_lane;
      Alcotest.(check bool) "dying act on record: the injected fault" true
        (List.exists
           (fun e -> e.Obs.Ring.e_name = "worker.fault" && e.Obs.Ring.e_kind = Obs.Ring.Mark)
           d.Obs.Ring.d_entries);
      (* The supervisor's own ring logged the respawn. *)
      let sup = Obs.Ring.read ~path:(prefix ^ ".supervisor.ring") in
      Alcotest.(check int) "supervisor lane" 0 sup.Obs.Ring.d_lane;
      Alcotest.(check bool) "respawn recorded" true
        (List.exists
           (fun e -> e.Obs.Ring.e_name = "supervisor.respawn")
           sup.Obs.Ring.d_entries))

(* {1 Checkpoint interchange: sharded <-> in-process} *)

let test_checkpoint_interchange () =
  let problem = zdt1 6 in
  let full = A.run ~seed:31 ~generations:20 problem quad_config in
  with_temp_file (fun path ->
      (* Sharded half-run, in-process resume. *)
      let _half, _ =
        Sup.run ~seed:31 ~config:sup_config ~checkpoint:path ~generations:10 problem
          quad_config
      in
      let resumed = A.run ~seed:31 ~resume:path ~generations:20 problem quad_config in
      Alcotest.(check bool) "sharded checkpoint resumes in-process" true
        (front_key resumed = front_key full));
  with_temp_file (fun path ->
      (* In-process half-run, sharded resume. *)
      let _half = A.run ~seed:31 ~checkpoint:path ~generations:10 problem quad_config in
      let resumed, _ =
        Sup.run ~seed:31 ~config:sup_config ~resume:path ~generations:20 problem quad_config
      in
      Alcotest.(check bool) "in-process checkpoint resumes sharded" true
        (front_key resumed = front_key full))

(* {1 Checkpoint version tolerance (info_version round-trip)} *)

(* Marshal-layout mirrors of the archipelago checkpoint payloads, for
   manufacturing a genuine v1 file from a v2 one (v1 = v2 minus the
   trailing guard-stats field). *)
type snapshot_v2_repr = {
  r2_problem : string;
  r2_period : int;
  r2_n_islands : int;
  r2_islands : Pmo2.Island.snapshot array;
  r2_rng : int64;
  r2_archive : Moo.Solution.t list;
  r2_gens : int;
  r2_failures : int;
  r2_guards : Runtime.Guard.stats array;
}
[@@warning "-69"]

type snapshot_v1_repr = {
  r1_problem : string;
  r1_period : int;
  r1_n_islands : int;
  r1_islands : Pmo2.Island.snapshot array;
  r1_rng : int64;
  r1_archive : Moo.Solution.t list;
  r1_gens : int;
  r1_failures : int;
}
[@@warning "-69"]

let arch_base = "robustpath-archipelago-checkpoint"

let downgrade_checkpoint ~src ~dst =
  let magic v = Runtime.Checkpoint.versioned_magic ~base:arch_base ~version:v in
  let s : snapshot_v2_repr = Runtime.Checkpoint.load ~magic:(magic 2) ~path:src in
  Runtime.Checkpoint.save ~magic:(magic 1) ~path:dst
    {
      r1_problem = s.r2_problem;
      r1_period = s.r2_period;
      r1_n_islands = s.r2_n_islands;
      r1_islands = s.r2_islands;
      r1_rng = s.r2_rng;
      r1_archive = s.r2_archive;
      r1_gens = s.r2_gens;
      r1_failures = s.r2_failures;
    }

let test_info_version_roundtrip () =
  let problem = zdt1 6 in
  with_temp_file (fun v2path ->
      with_temp_file (fun v1path ->
          let _ = A.run ~seed:37 ~checkpoint:v2path ~generations:10 problem quad_config in
          downgrade_checkpoint ~src:v2path ~dst:v1path;
          (* Both vintages report their version through the shared
             dispatch helper and still load. *)
          List.iter
            (fun (path, version) ->
              Alcotest.(check (option int))
                (Printf.sprintf "magic dispatch reports v%d" version)
                (Some version)
                (Runtime.Checkpoint.version_of_magic ~base:arch_base
                   (Runtime.Checkpoint.read_magic ~path));
              let info = A.inspect path in
              Alcotest.(check int)
                (Printf.sprintf "inspect reports v%d" version)
                version info.A.info_version;
              let st = A.load problem quad_config path in
              Alcotest.(check int)
                (Printf.sprintf "v%d loads and resumes counters" version)
                10 (A.generations_done st))
            [ (v2path, 2); (v1path, 1) ];
          (* The wire format shares the same versioned-magic grammar. *)
          Alcotest.(check (option int)) "wire magic dispatches" (Some 2)
            (Runtime.Checkpoint.version_of_magic ~base:"robustpath-shard-wire" Shard.Wire.magic)))

let () =
  Alcotest.run "shard"
    [
      ( "wire",
        [
          Alcotest.test_case "versioned magic" `Quick test_versioned_magic;
          Alcotest.test_case "frame roundtrip + CRC" `Quick test_frame_roundtrip;
          Alcotest.test_case "torn at every byte boundary" `Quick test_wire_torn_at_every_byte;
        ] );
      ( "fault-spec",
        [
          Alcotest.test_case "parse kill spec" `Quick test_parse_kill_spec;
          Alcotest.test_case "incarnation gating" `Quick test_should_fault_incarnation_gate;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "1/2/4-shard front identity" `Quick
            test_front_identity_1_2_4_shards;
          Alcotest.test_case "shards clamped to islands" `Quick test_shards_clamped_to_islands;
          Alcotest.test_case "guard stats exact across shards" `Quick
            test_guard_stats_exact_across_shards;
        ] );
      ( "observability",
        [
          Alcotest.test_case "merged roll-ups and trace lanes" `Quick
            test_merged_rollups_and_trace;
          Alcotest.test_case "flight recorder survives SIGKILL" `Quick
            test_flight_recorder_survives_kill;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "kill mid-migration, supervised restart" `Quick
            test_kill_mid_migration_supervised_restart;
          Alcotest.test_case "wedged worker hard-preempted" `Quick
            test_wedged_worker_hard_preempted;
          Alcotest.test_case "retry budget exhaustion degrades" `Quick
            test_retry_budget_exhaustion_degrades;
        ] );
      ( "checkpoints",
        [
          Alcotest.test_case "sharded <-> in-process interchange" `Quick
            test_checkpoint_interchange;
          Alcotest.test_case "info_version v1/v2 round-trip" `Quick test_info_version_roundtrip;
        ] );
    ]
