(* Tests for the fault-tolerance stack: ODE fallback chain, guarded
   objectives, deterministic fault injection, supervised islands, and
   checkpoint/resume. *)

(* {1 A stiff test problem}

   y' = lambda (cos t - y) with lambda = 1e6: the solution hugs cos t, but
   an explicit integrator is stability-limited to steps ~ 2/lambda, so a
   bounded step budget forces dopri5 into [Step_underflow] while implicit
   Euler strolls through. *)

let lambda = 1e6

let stiff_f t y = [| lambda *. (cos t -. y.(0)) |]

let test_dopri5_underflows_on_stiff () =
  Alcotest.check_raises "dopri5 exhausts its step budget"
    (Numerics.Ode.Step_underflow 0.)
    (fun () ->
      match
        Numerics.Ode.dopri5 ~max_steps:2000 ~f:stiff_f ~t0:0. ~t1:1. ~y0:[| 0. |] ()
      with
      | _ -> ()
      | exception Numerics.Ode.Step_underflow _ ->
        (* Normalize the payload: we only care that it underflowed. *)
        raise (Numerics.Ode.Step_underflow 0.))

let test_fallback_rescues_stiff () =
  let r, tier =
    Numerics.Ode.integrate_fallback ~max_steps:2000 ~f:stiff_f ~t0:0. ~t1:1.
      ~y0:[| 0. |] ()
  in
  (match tier with
  | Numerics.Ode.Stiff -> ()
  | t -> Alcotest.failf "expected implicit-Euler tier, got %s" (Numerics.Ode.tier_name t));
  Alcotest.(check bool) "finite steady state" true (Float.is_finite r.Numerics.Ode.y.(0));
  Alcotest.(check (float 1e-2)) "tracks cos t" (cos 1.) r.Numerics.Ode.y.(0)

let test_fallback_prefers_first_tier () =
  (* A benign problem must not be kicked down the chain. *)
  let f _ y = [| -.y.(0) |] in
  let r, tier = Numerics.Ode.integrate_fallback ~f ~t0:0. ~t1:1. ~y0:[| 1. |] () in
  (match tier with
  | Numerics.Ode.Adaptive -> ()
  | t -> Alcotest.failf "expected plain dopri5, got %s" (Numerics.Ode.tier_name t));
  Alcotest.(check (float 1e-5)) "exp decay" (exp (-1.)) r.Numerics.Ode.y.(0)

let test_ode_steady_state_survives_stiffness () =
  (* The windowed steady-state driver now rides the fallback chain instead
     of propagating Step_underflow. *)
  match Numerics.Ode.steady_state ~tol:1e-6 ~t_max:50. ~f:stiff_f ~y0:[| 0. |] () with
  | Ok _ | Error _ -> ()

(* {1 Guard} *)

let test_guard_penalizes_exceptions () =
  let g = Runtime.Guard.create ~penalty:1e9 () in
  let f x = if x.(0) > 0.5 then failwith "solver blew up" else [| x.(0); 1. |] in
  let wrapped = Runtime.Guard.wrap g ~n_obj:2 f in
  Alcotest.(check (array (float 0.))) "clean pass-through" [| 0.2; 1. |] (wrapped [| 0.2 |]);
  Alcotest.(check (array (float 0.))) "penalized" [| 1e9; 1e9 |] (wrapped [| 0.9 |]);
  let s = Runtime.Guard.stats g in
  Alcotest.(check int) "evaluations" 2 s.Runtime.Guard.evaluations;
  Alcotest.(check int) "exceptions" 1 s.Runtime.Guard.exceptions;
  Alcotest.(check int) "failures" 1 (Runtime.Guard.failures s)

let test_guard_sanitizes_non_finite () =
  let g = Runtime.Guard.create ~penalty:1e9 () in
  let wrapped = Runtime.Guard.wrap g ~n_obj:3 (fun _ -> [| nan; 2.; infinity |]) in
  Alcotest.(check (array (float 0.))) "NaN and inf replaced, finite kept" [| 1e9; 2.; 1e9 |]
    (wrapped [| 0. |]);
  let s = Runtime.Guard.stats g in
  Alcotest.(check int) "non-finite counted" 1 s.Runtime.Guard.non_finite;
  Runtime.Guard.reset g;
  Alcotest.(check int) "reset" 0 (Runtime.Guard.stats g).Runtime.Guard.evaluations

let test_guard_problem_wrapping () =
  let p =
    Moo.Problem.make ~name:"raising" ~n_obj:2 ~lower:[| 0. |] ~upper:[| 1. |]
      ~violation:(fun _ -> nan)
      (fun _ -> failwith "boom")
  in
  let g = Runtime.Guard.create () in
  let gp = Runtime.Guard.wrap_problem g p in
  let s = Moo.Solution.evaluate gp [| 0.5 |] in
  Alcotest.(check bool) "objectives finite" true (Array.for_all Float.is_finite s.Moo.Solution.f);
  Alcotest.(check bool) "violation finite" true (Float.is_finite s.Moo.Solution.v)

let test_guard_rejects_non_finite_penalty () =
  Alcotest.(check bool) "invalid penalty refused" true
    (match Runtime.Guard.create ~penalty:infinity () with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {1 Fault injection} *)

let test_fault_decide_is_pure () =
  let cfg = { Runtime.Fault.default with fraction = 0.5; seed = 3 } in
  let rng = Numerics.Rng.create 1 in
  for _ = 1 to 50 do
    let x = Array.init 4 (fun _ -> Numerics.Rng.float rng) in
    let a = Runtime.Fault.decide cfg x and b = Runtime.Fault.decide cfg x in
    Alcotest.(check bool) "same x, same decision" true (a = b)
  done

let test_fault_fraction_bounds () =
  let rng = Numerics.Rng.create 2 in
  let xs = Array.init 2000 (fun _ -> Array.init 3 (fun _ -> Numerics.Rng.float rng)) in
  let count frac =
    let cfg = { Runtime.Fault.default with fraction = frac } in
    Array.fold_left
      (fun acc x -> if Runtime.Fault.decide cfg x <> None then acc + 1 else acc)
      0 xs
  in
  Alcotest.(check int) "fraction 0 never fires" 0 (count 0.);
  Alcotest.(check int) "fraction 1 always fires" 2000 (count 1.);
  let hits = float_of_int (count 0.3) /. 2000. in
  Alcotest.(check bool)
    (Printf.sprintf "fraction 0.3 fires ~30%% (got %.3f)" hits)
    true
    (hits > 0.25 && hits < 0.35)

let test_fault_modes_behave () =
  let raise_cfg = { Runtime.Fault.default with fraction = 1.; modes = [ Runtime.Fault.Raise ] } in
  let nan_cfg = { raise_cfg with modes = [ Runtime.Fault.Nan ] } in
  let stall_cfg = { raise_cfg with modes = [ Runtime.Fault.Stall ]; stall_iters = 100 } in
  let f x = [| x.(0) |] in
  Alcotest.(check bool) "raise mode raises" true
    (match Runtime.Fault.wrap raise_cfg ~n_obj:1 f [| 0.5 |] with
    | exception Runtime.Fault.Injected -> true
    | _ -> false);
  Alcotest.(check bool) "nan mode poisons" true
    (Float.is_nan (Runtime.Fault.wrap nan_cfg ~n_obj:1 f [| 0.5 |]).(0));
  Alcotest.(check (array (float 0.))) "stall mode still answers" [| 0.5 |]
    (Runtime.Fault.wrap stall_cfg ~n_obj:1 f [| 0.5 |]);
  Alcotest.(check bool) "malformed fraction refused" true
    (match Runtime.Fault.decide { raise_cfg with fraction = 2. } [| 0. |] with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* {1 Archipelago under injected faults} *)

let small_config =
  {
    Pmo2.Archipelago.default_config with
    migration_period = 10;
    nsga2 = { Ea.Nsga2.default_config with pop_size = 20 };
  }

let faulty_zdt1 ~guard ~fraction ~seed =
  let cfg =
    {
      Runtime.Fault.fraction;
      seed;
      modes = [ Runtime.Fault.Raise; Runtime.Fault.Nan; Runtime.Fault.Stall ];
      stall_iters = 500;
    }
  in
  Runtime.Guard.wrap_problem guard (Runtime.Fault.wrap_problem cfg (Moo.Benchmarks.zdt1 ~n:8))

let objs r =
  List.sort compare
    (List.map (fun s -> Array.to_list s.Moo.Solution.f) r.Pmo2.Archipelago.front)

let test_run_completes_under_faults () =
  (* Acceptance criterion: 5% injected faults, run completes without
     raising, telemetry reports them, the front holds no NaN/inf. *)
  let guard = Runtime.Guard.create () in
  let problem = faulty_zdt1 ~guard ~fraction:0.05 ~seed:17 in
  let r = Pmo2.Archipelago.run ~seed:4 ~generations:30 problem small_config in
  let s = Runtime.Guard.stats guard in
  Alcotest.(check bool) "faults actually fired" true (Runtime.Guard.failures s > 0);
  Alcotest.(check bool) "front non-empty" true (r.Pmo2.Archipelago.front <> []);
  List.iter
    (fun s ->
      Alcotest.(check bool) "front objectives finite" true
        (Array.for_all Float.is_finite s.Moo.Solution.f))
    r.Pmo2.Archipelago.front

let test_faulted_run_deterministic_parallel_and_sequential () =
  (* Same seed + same fault fraction must give the identical final front,
     parallel and sequential: injection is a pure hash of (seed, x), so it
     commutes with evaluation order. *)
  let run ~parallel =
    let guard = Runtime.Guard.create () in
    let problem = faulty_zdt1 ~guard ~fraction:0.05 ~seed:17 in
    Pmo2.Archipelago.run ~seed:4 ~generations:30 problem
      { small_config with Pmo2.Archipelago.parallel }
  in
  let a = run ~parallel:false and b = run ~parallel:false in
  Alcotest.(check bool) "sequential repeatable" true (objs a = objs b);
  let c = run ~parallel:true in
  Alcotest.(check bool) "parallel identical to sequential" true (objs a = objs c)

let test_supervisor_absorbs_island_crash () =
  (* Unguarded objective that starts throwing after the initial
     populations are built: every epoch crashes, the supervisor rolls the
     islands back, and the run still finishes with the initial fronts. *)
  let calls = ref 0 in
  let base = Moo.Benchmarks.zdt1 ~n:6 in
  let problem =
    {
      base with
      Moo.Problem.eval =
        (fun x ->
          incr calls;
          if !calls > 50 then failwith "flaky backend";
          base.Moo.Problem.eval x);
    }
  in
  let r = Pmo2.Archipelago.run ~seed:5 ~generations:20 problem small_config in
  Alcotest.(check bool) "crashes were absorbed" true (r.Pmo2.Archipelago.failures > 0);
  Alcotest.(check bool) "front survives" true (r.Pmo2.Archipelago.front <> [])

(* {1 Checkpoint / resume} *)

let with_temp_file f =
  let path = Filename.temp_file "robustpath" ".ckpt" in
  Fun.protect ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ()) (fun () -> f path)

let test_kill_and_resume_bit_for_bit () =
  let problem = Moo.Benchmarks.zdt1 ~n:8 in
  let full = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem small_config in
  with_temp_file (fun path ->
      (* "Kill" after two of the four epochs: run half the generations with
         checkpointing on, then resume from disk for the full budget. *)
      let _half =
        Pmo2.Archipelago.run ~seed:21 ~checkpoint:path ~generations:20 problem
          small_config
      in
      let resumed =
        Pmo2.Archipelago.run ~seed:21 ~resume:path ~generations:40 problem small_config
      in
      Alcotest.(check bool) "identical fronts" true (objs full = objs resumed);
      Alcotest.(check int) "identical evaluation counts" full.Pmo2.Archipelago.evaluations
        resumed.Pmo2.Archipelago.evaluations;
      let hv r =
        Moo.Hypervolume.of_solutions ~ref_point:[| 1.1; 7. |] r.Pmo2.Archipelago.front
      in
      Alcotest.(check (float 0.)) "identical hypervolume" (hv full) (hv resumed))

let test_pooled_kill_and_resume () =
  (* The persistent-pool schedule (islands on the pool, populations on
     the pool) must leave checkpoint/resume untouched: the resumed run
     and the pooled run must match the sequential full run bit for bit,
     including the failures and guard telemetry.  Fault injection is a
     pure hash of (seed, x), so it commutes with the pool. *)
  Parallel.Pool.set_default_domains 2;
  let pool = Parallel.Pool.get () in
  let problem =
    Runtime.Fault.wrap_problem
      { Runtime.Fault.fraction = 0.05; seed = 17; modes = [ Runtime.Fault.Nan ]; stall_iters = 500 }
      (Moo.Benchmarks.zdt1 ~n:8)
  in
  let cfg ~pooled =
    {
      small_config with
      Pmo2.Archipelago.guard_penalty = Some 1e12;
      parallel = pooled;
      nsga2 =
        {
          Ea.Nsga2.default_config with
          pop_size = 20;
          pool = (if pooled then Some pool else None);
        };
    }
  in
  let sequential = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem (cfg ~pooled:false) in
  let full = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem (cfg ~pooled:true) in
  Alcotest.(check bool) "pooled front = sequential front" true (objs sequential = objs full);
  Alcotest.(check bool) "pooled guard telemetry = sequential" true
    (sequential.Pmo2.Archipelago.guard_stats = full.Pmo2.Archipelago.guard_stats);
  Alcotest.(check int) "pooled failures = sequential" sequential.Pmo2.Archipelago.failures
    full.Pmo2.Archipelago.failures;
  with_temp_file (fun path ->
      let _half =
        Pmo2.Archipelago.run ~seed:21 ~checkpoint:path ~generations:20 problem
          (cfg ~pooled:true)
      in
      let resumed =
        Pmo2.Archipelago.run ~seed:21 ~resume:path ~generations:40 problem (cfg ~pooled:true)
      in
      Alcotest.(check bool) "pooled resume identical fronts" true (objs full = objs resumed);
      Alcotest.(check int) "pooled resume identical evaluations"
        full.Pmo2.Archipelago.evaluations resumed.Pmo2.Archipelago.evaluations;
      Alcotest.(check bool) "pooled resume identical guard telemetry" true
        (full.Pmo2.Archipelago.guard_stats = resumed.Pmo2.Archipelago.guard_stats));
  Parallel.Pool.set_default_domains 1

let test_resume_spea2_and_mixed_islands () =
  let problem = Moo.Benchmarks.zdt1 ~n:6 in
  let cfg =
    {
      small_config with
      Pmo2.Archipelago.algorithms =
        [
          Pmo2.Archipelago.Nsga2 { Ea.Nsga2.default_config with pop_size = 20 };
          Pmo2.Archipelago.Spea2
            { Ea.Spea2.default_config with pop_size = 20; archive_size = 20 };
        ];
    }
  in
  let full = Pmo2.Archipelago.run ~seed:9 ~generations:30 problem cfg in
  with_temp_file (fun path ->
      let _ = Pmo2.Archipelago.run ~seed:9 ~checkpoint:path ~generations:10 problem cfg in
      let resumed = Pmo2.Archipelago.run ~seed:9 ~resume:path ~generations:30 problem cfg in
      Alcotest.(check bool) "mixed-island resume identical" true (objs full = objs resumed))

let test_checkpoint_validation () =
  let problem = Moo.Benchmarks.zdt1 ~n:6 in
  with_temp_file (fun path ->
      let st = Pmo2.Archipelago.init ~seed:3 problem small_config in
      Pmo2.Archipelago.step_epoch st;
      Pmo2.Archipelago.save st path;
      (* Same file, different problem: refused. *)
      Alcotest.(check bool) "wrong problem refused" true
        (match Pmo2.Archipelago.load Moo.Benchmarks.schaffer small_config path with
        | exception Invalid_argument _ -> true
        | _ -> false);
      (* Same file, different island layout: refused. *)
      Alcotest.(check bool) "wrong island count refused" true
        (match
           Pmo2.Archipelago.load problem
             { small_config with Pmo2.Archipelago.n_islands = 3 }
             path
         with
        | exception Invalid_argument _ -> true
        | _ -> false);
      (* Good load restores counters exactly. *)
      let st' = Pmo2.Archipelago.load problem small_config path in
      Alcotest.(check int) "generation counter restored" 10
        (Pmo2.Archipelago.generations_done st');
      Alcotest.(check int) "evaluation counter restored"
        (Pmo2.Archipelago.evaluations st)
        (Pmo2.Archipelago.evaluations st'))

let test_corrupt_checkpoint_detected () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      Alcotest.(check bool) "bad magic detected" true
        (match
           Pmo2.Archipelago.load (Moo.Benchmarks.zdt1 ~n:6) small_config path
         with
        | exception Runtime.Checkpoint.Corrupt _ -> true
        | _ -> false))

(* {1 Numbered checkpoint histories / auto-pruning} *)

(* Like [with_temp_file], but also sweeps up any [path.NNNNNN] history
   files the test left behind. *)
let with_temp_history f =
  with_temp_file (fun path ->
      Fun.protect
        ~finally:(fun () ->
          let dir = Filename.dirname path and base = Filename.basename path in
          Array.iter
            (fun name ->
              if String.starts_with ~prefix:(base ^ ".") name then
                try Sys.remove (Filename.concat dir name) with Sys_error _ -> ())
            (try Sys.readdir dir with Sys_error _ -> [||]))
        (fun () -> f path))

let test_numbered_history_primitives () =
  Alcotest.(check string) "zero padding" "x.000042" (Runtime.Checkpoint.numbered "x" 42);
  Alcotest.(check bool) "negative seq refused" true
    (match Runtime.Checkpoint.numbered "x" (-1) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  with_temp_history (fun path ->
      Alcotest.(check (option string)) "no history yet" None (Runtime.Checkpoint.latest path);
      List.iter
        (fun i ->
          Runtime.Checkpoint.save ~magic:"history-test"
            ~path:(Runtime.Checkpoint.numbered path i)
            i)
        [ 1; 2; 3; 4 ];
      Alcotest.(check (option string)) "latest is newest"
        (Some (Runtime.Checkpoint.numbered path 4))
        (Runtime.Checkpoint.latest path);
      Runtime.Checkpoint.prune ~keep:2 path;
      List.iter
        (fun (i, expected) ->
          Alcotest.(check bool)
            (Printf.sprintf "file %d survival" i)
            expected
            (Sys.file_exists (Runtime.Checkpoint.numbered path i)))
        [ (1, false); (2, false); (3, true); (4, true) ];
      Alcotest.(check bool) "keep < 1 refused" true
        (match Runtime.Checkpoint.prune ~keep:0 path with
        | exception Invalid_argument _ -> true
        | _ -> false))

let test_keep_checkpoints_prunes_and_resumes () =
  let problem = Moo.Benchmarks.zdt1 ~n:8 in
  let full = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem small_config in
  with_temp_history (fun path ->
      Sys.remove path;
      (* Half the run (2 of 4 epochs) with a 2-deep history: both epoch
         files survive, nothing is written to the bare path. *)
      let _half =
        Pmo2.Archipelago.run ~seed:21 ~checkpoint:path ~keep_checkpoints:2
          ~generations:20 problem small_config
      in
      Alcotest.(check bool) "bare path not written" false (Sys.file_exists path);
      Alcotest.(check bool) "epoch 1 kept" true
        (Sys.file_exists (Runtime.Checkpoint.numbered path 1));
      Alcotest.(check bool) "epoch 2 kept" true
        (Sys.file_exists (Runtime.Checkpoint.numbered path 2));
      (* Resume from the newest surviving file: bit-identical to the
         uninterrupted run. *)
      let newest = Option.get (Runtime.Checkpoint.latest path) in
      Alcotest.(check string) "latest finds epoch 2"
        (Runtime.Checkpoint.numbered path 2) newest;
      let resumed =
        Pmo2.Archipelago.run ~seed:21 ~resume:newest ~generations:40 problem small_config
      in
      Alcotest.(check bool) "resume from pruned history identical" true
        (objs full = objs resumed);
      (* A full run prunes as it goes: of 4 epoch files only the 2 newest
         survive. *)
      let _all =
        Pmo2.Archipelago.run ~seed:21 ~checkpoint:path ~keep_checkpoints:2
          ~generations:40 problem small_config
      in
      List.iter
        (fun (i, expected) ->
          Alcotest.(check bool)
            (Printf.sprintf "epoch %d file survival" i)
            expected
            (Sys.file_exists (Runtime.Checkpoint.numbered path i)))
        [ (1, false); (2, false); (3, true); (4, true) ])

(* {1 Legacy (v1) checkpoints} *)

(* Marshal-layout mirrors of the archipelago's checkpoint payloads, used
   to manufacture a genuine v1 fixture from a current checkpoint: v1 is
   exactly v2 minus the trailing guard-stats field. *)
type snapshot_v2_repr = {
  r2_problem : string;
  r2_period : int;
  r2_n_islands : int;
  r2_islands : Pmo2.Island.snapshot array;
  r2_rng : int64;
  r2_archive : Moo.Solution.t list;
  r2_gens : int;
  r2_failures : int;
  r2_guards : Runtime.Guard.stats array;
}
[@@warning "-69"]

type snapshot_v1_repr = {
  r1_problem : string;
  r1_period : int;
  r1_n_islands : int;
  r1_islands : Pmo2.Island.snapshot array;
  r1_rng : int64;
  r1_archive : Moo.Solution.t list;
  r1_gens : int;
  r1_failures : int;
}
[@@warning "-69"]

let magic_v1 = "robustpath-archipelago-checkpoint v1"
let magic_v2 = "robustpath-archipelago-checkpoint v2"

let downgrade_checkpoint ~src ~dst =
  let s : snapshot_v2_repr = Runtime.Checkpoint.load ~magic:magic_v2 ~path:src in
  Runtime.Checkpoint.save ~magic:magic_v1 ~path:dst
    {
      r1_problem = s.r2_problem;
      r1_period = s.r2_period;
      r1_n_islands = s.r2_n_islands;
      r1_islands = s.r2_islands;
      r1_rng = s.r2_rng;
      r1_archive = s.r2_archive;
      r1_gens = s.r2_gens;
      r1_failures = s.r2_failures;
    }

let contains_substring ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  n = 0 || go 0

let test_v1_checkpoint_inspect_and_resume () =
  let problem = Moo.Benchmarks.zdt1 ~n:8 in
  let full = Pmo2.Archipelago.run ~seed:21 ~generations:40 problem small_config in
  with_temp_file (fun v2path ->
      with_temp_file (fun v1path ->
          let _ =
            Pmo2.Archipelago.run ~seed:21 ~checkpoint:v2path ~generations:20 problem
              small_config
          in
          downgrade_checkpoint ~src:v2path ~dst:v1path;
          (* inspect reports the version and the missing telemetry instead
             of failing. *)
          let info = Pmo2.Archipelago.inspect v1path in
          Alcotest.(check int) "format version" 1 info.Pmo2.Archipelago.info_version;
          Alcotest.(check int) "no guard stats" 0
            (Array.length info.Pmo2.Archipelago.info_guards);
          Alcotest.(check string) "problem name" "zdt1" info.Pmo2.Archipelago.info_problem;
          Alcotest.(check int) "generations" 20 info.Pmo2.Archipelago.info_generations;
          let rendered = Format.asprintf "%a" Pmo2.Archipelago.pp_info info in
          Alcotest.(check bool) "pp names the format" true
            (contains_substring ~sub:"checkpoint format v1" rendered);
          Alcotest.(check bool) "pp flags missing telemetry" true
            (contains_substring ~sub:"not recorded" rendered);
          (* a v2 checkpoint of the same run reports version 2 *)
          Alcotest.(check int) "v2 reports 2" 2
            (Pmo2.Archipelago.inspect v2path).Pmo2.Archipelago.info_version;
          (* resume accepts the v1 file (guard counters start fresh) and
             reproduces the uninterrupted run. *)
          let resumed =
            Pmo2.Archipelago.run ~seed:21 ~resume:v1path ~generations:40 problem
              small_config
          in
          Alcotest.(check bool) "v1 resume identical" true (objs full = objs resumed)))

(* {1 Per-island guard telemetry} *)

let test_per_island_guard_telemetry () =
  let calls = ref 0 in
  let base = Moo.Benchmarks.zdt1 ~n:6 in
  let problem =
    {
      base with
      Moo.Problem.eval =
        (fun x ->
          incr calls;
          if !calls mod 7 = 0 then failwith "flaky backend";
          base.Moo.Problem.eval x);
    }
  in
  let cfg = { small_config with Pmo2.Archipelago.guard_penalty = Some 1e12 } in
  let r = Pmo2.Archipelago.run ~seed:11 ~generations:20 problem cfg in
  Alcotest.(check int) "one guard per island" 2
    (Array.length r.Pmo2.Archipelago.guard_stats);
  let penalized =
    Array.fold_left
      (fun acc s -> acc + Runtime.Guard.failures s)
      0 r.Pmo2.Archipelago.guard_stats
  in
  Alcotest.(check bool) "failures were penalized, not fatal" true (penalized > 0);
  Alcotest.(check bool) "no island crashed" true (r.Pmo2.Archipelago.failures = 0);
  Alcotest.(check bool) "front survives" true (r.Pmo2.Archipelago.front <> [])

let test_guard_telemetry_off_by_default () =
  let problem = Moo.Benchmarks.zdt1 ~n:6 in
  let r = Pmo2.Archipelago.run ~seed:12 ~generations:10 problem small_config in
  Alcotest.(check int) "no guards without opting in" 0
    (Array.length r.Pmo2.Archipelago.guard_stats)

(* {1 Checkpoint inspection} *)

let test_inspect_reports_metadata () =
  let problem = Moo.Benchmarks.zdt1 ~n:6 in
  let cfg = { small_config with Pmo2.Archipelago.guard_penalty = Some 1e12 } in
  with_temp_file (fun path ->
      let r = Pmo2.Archipelago.run ~seed:13 ~checkpoint:path ~generations:20 problem cfg in
      let info = Pmo2.Archipelago.inspect path in
      Alcotest.(check string) "problem name" "zdt1" info.Pmo2.Archipelago.info_problem;
      Alcotest.(check int) "generations" 20 info.Pmo2.Archipelago.info_generations;
      Alcotest.(check int) "period" 10 info.Pmo2.Archipelago.info_period;
      Alcotest.(check int) "islands" 2 (Array.length info.Pmo2.Archipelago.info_islands);
      Alcotest.(check int) "guards" 2 (Array.length info.Pmo2.Archipelago.info_guards);
      Array.iter
        (fun isl ->
          Alcotest.(check string) "algo" "nsga2" isl.Pmo2.Archipelago.info_algo;
          Alcotest.(check int) "island generation" 20 isl.Pmo2.Archipelago.info_generation)
        info.Pmo2.Archipelago.info_islands;
      let snap_evals =
        Array.fold_left
          (fun acc isl -> acc + isl.Pmo2.Archipelago.info_evaluations)
          0 info.Pmo2.Archipelago.info_islands
      in
      Alcotest.(check int) "evaluations match the run" r.Pmo2.Archipelago.evaluations
        snap_evals)

let test_inspect_rejects_corrupt_file () =
  with_temp_file (fun path ->
      let oc = open_out path in
      output_string oc "not a checkpoint\n";
      close_out oc;
      Alcotest.(check bool) "corrupt file raises" true
        (match Pmo2.Archipelago.inspect path with
        | exception Runtime.Checkpoint.Corrupt _ -> true
        | _ -> false));
  Alcotest.(check bool) "missing file raises" true
    (match Pmo2.Archipelago.inspect "/nonexistent/robustpath.ckpt" with
    | exception Runtime.Checkpoint.Corrupt _ -> true
    | _ -> false)

(* {1 Precondition validation (must survive -noassert)} *)

let test_invalid_arg_preconditions () =
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  expect_invalid "init: zero islands" (fun () ->
      Pmo2.Archipelago.init (Moo.Benchmarks.zdt1 ~n:4)
        { small_config with Pmo2.Archipelago.n_islands = 0 });
  expect_invalid "init: zero period" (fun () ->
      Pmo2.Archipelago.init (Moo.Benchmarks.zdt1 ~n:4)
        { small_config with Pmo2.Archipelago.migration_period = 0 });
  expect_invalid "init: bad probability" (fun () ->
      Pmo2.Archipelago.init (Moo.Benchmarks.zdt1 ~n:4)
        { small_config with Pmo2.Archipelago.migration_prob = 1.5 });
  expect_invalid "paper_config: bad hint" (fun () ->
      Pmo2.Archipelago.paper_config ~generations_hint:0);
  expect_invalid "run: keep_checkpoints < 1" (fun () ->
      Pmo2.Archipelago.run ~checkpoint:"unused.ckpt" ~keep_checkpoints:0 ~generations:10
        (Moo.Benchmarks.zdt1 ~n:4) small_config);
  expect_invalid "worst_of: zero trials" (fun () ->
      let rng = Numerics.Rng.create 1 in
      Robustness.Screen.worst_of ~rng ~f:(fun x -> x.(0)) ~trials:0 [| 1. |])

let () =
  Alcotest.run "fault"
    [
      ( "ode-fallback",
        [
          Alcotest.test_case "dopri5 underflows on stiff" `Quick test_dopri5_underflows_on_stiff;
          Alcotest.test_case "chain rescues stiff" `Quick test_fallback_rescues_stiff;
          Alcotest.test_case "benign stays tier 1" `Quick test_fallback_prefers_first_tier;
          Alcotest.test_case "steady_state survives" `Quick test_ode_steady_state_survives_stiffness;
        ] );
      ( "guard",
        [
          Alcotest.test_case "penalizes exceptions" `Quick test_guard_penalizes_exceptions;
          Alcotest.test_case "sanitizes non-finite" `Quick test_guard_sanitizes_non_finite;
          Alcotest.test_case "wraps problems" `Quick test_guard_problem_wrapping;
          Alcotest.test_case "penalty must be finite" `Quick test_guard_rejects_non_finite_penalty;
        ] );
      ( "fault-injection",
        [
          Alcotest.test_case "decision is pure" `Quick test_fault_decide_is_pure;
          Alcotest.test_case "fraction bounds" `Quick test_fault_fraction_bounds;
          Alcotest.test_case "modes behave" `Quick test_fault_modes_behave;
        ] );
      ( "archipelago",
        [
          Alcotest.test_case "completes under 5% faults" `Quick test_run_completes_under_faults;
          Alcotest.test_case "faulted run deterministic" `Slow
            test_faulted_run_deterministic_parallel_and_sequential;
          Alcotest.test_case "supervisor absorbs crashes" `Quick
            test_supervisor_absorbs_island_crash;
        ] );
      ( "checkpoint",
        [
          Alcotest.test_case "kill and resume bit-for-bit" `Quick test_kill_and_resume_bit_for_bit;
          Alcotest.test_case "kill and resume under the pool" `Quick
            test_pooled_kill_and_resume;
          Alcotest.test_case "mixed islands resume" `Quick test_resume_spea2_and_mixed_islands;
          Alcotest.test_case "validation" `Quick test_checkpoint_validation;
          Alcotest.test_case "corrupt file detected" `Quick test_corrupt_checkpoint_detected;
          Alcotest.test_case "numbered history primitives" `Quick
            test_numbered_history_primitives;
          Alcotest.test_case "keep_checkpoints prunes and resumes" `Quick
            test_keep_checkpoints_prunes_and_resumes;
          Alcotest.test_case "v1 inspect and resume" `Quick
            test_v1_checkpoint_inspect_and_resume;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "per-island guard counters" `Quick test_per_island_guard_telemetry;
          Alcotest.test_case "off by default" `Quick test_guard_telemetry_off_by_default;
        ] );
      ( "inspect",
        [
          Alcotest.test_case "reports metadata" `Quick test_inspect_reports_metadata;
          Alcotest.test_case "rejects corrupt file" `Quick test_inspect_rejects_corrupt_file;
        ] );
      ( "preconditions",
        [ Alcotest.test_case "invalid_arg everywhere" `Quick test_invalid_arg_preconditions ] );
    ]
